"""Tests for bounded threaded read-ahead (:mod:`repro.store.prefetch`).

The pipeline's contract: read-ahead changes *when* chunks are fetched
(placement order, bounded look-ahead) but never *what* the query
answers -- results, counters and fault behavior are identical to the
synchronous path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.decluster.hilbert import HilbertDeclusterer
from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.plan import FaultPlan
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_query
from repro.runtime.engine import execute_plan
from repro.store.prefetch import PrefetchPolicy, TilePrefetcher, read_batches

from helpers import make_functional_setup


def build_problem(chunks, mapping, grid, spec, n_procs, memory):
    inputs = ChunkSet.from_metas([c.meta for c in chunks])
    decl = HilbertDeclusterer()
    inputs = decl.place(inputs, n_procs)
    outputs = decl.place(grid.chunkset(), n_procs)
    graph = ChunkGraph.from_geometry(inputs, outputs, mapping)
    acc = np.asarray(
        [spec.acc_bytes(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)],
        dtype=np.int64,
    )
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=acc,
    )


def make_plan(seed, n_procs=3, memory=256, strategy="FRA"):
    from repro.aggregation.functions import SumAggregation

    rng = np.random.default_rng(seed)
    spec = SumAggregation(1)
    _, _, chunks, mapping, grid = make_functional_setup(
        rng, n_items=200, items_per_chunk=10
    )
    prob = build_problem(chunks, mapping, grid, spec, n_procs, memory)
    return plan_query(prob, strategy), chunks, mapping, grid, spec


class TestPolicy:
    def test_coerce(self):
        assert PrefetchPolicy.coerce(None) is None
        assert PrefetchPolicy.coerce(False) is None
        assert PrefetchPolicy.coerce(True) == PrefetchPolicy()
        policy = PrefetchPolicy(depth=2, workers=3)
        assert PrefetchPolicy.coerce(policy) is policy

    def test_bad_values_rejected(self):
        with pytest.raises(TypeError):
            PrefetchPolicy.coerce(3)
        with pytest.raises(ValueError):
            PrefetchPolicy(depth=0)
        with pytest.raises(ValueError):
            PrefetchPolicy(workers=0)


class TestPlacementOrder:
    """read_batches issues each tile's reads in the ``(node, disk,
    chunk id)`` order FileChunkStore.read_many performs physical reads
    in, and TilePrefetcher claims them in exactly that order."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        strategy=st.sampled_from(["FRA", "SRA", "DA", "HYBRID"]),
    )
    def test_batches_cover_reads_in_placement_order(self, seed, strategy):
        plan, chunks, _, _, _ = make_plan(seed, strategy=strategy)
        problem = plan.problem
        reads = plan.reads
        batches = read_batches(plan)
        assert len(batches) == plan.n_tiles
        seen = [r for batch in batches for (r, _) in batch]
        assert sorted(seen) == list(range(len(reads)))
        in_global = problem.input_global_ids
        for t, batch in enumerate(batches):
            keys = []
            for r, gid in batch:
                c = int(reads.chunk[r])
                assert int(reads.tile[r]) == t
                assert int(in_global[c]) == gid
                keys.append(
                    (int(problem.inputs.node[c]), int(problem.inputs.disk[c]), gid)
                )
            assert keys == sorted(keys)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), depth=st.integers(1, 8))
    def test_prefetcher_issues_in_batch_order(self, seed, depth):
        plan, chunks, _, _, _ = make_plan(seed, strategy="DA")
        batches = read_batches(plan)
        pf = TilePrefetcher(
            lambda gid: chunks[gid], batches, PrefetchPolicy(depth=depth, workers=2)
        )
        try:
            for t, batch in enumerate(batches):
                pf.begin_tile(t)
                for r, gid in batch:
                    assert pf.get(r) is chunks[gid]
        finally:
            pf.close()
        # Claims happen under the lock, strictly in flattened batch
        # order, regardless of worker count or depth.
        assert pf.reads_issued == [
            (t, r, gid) for t, batch in enumerate(batches) for (r, gid) in batch
        ]

    def test_rank_restriction(self):
        plan, _, _, _, _ = make_plan(11, strategy="FRA")
        reads = plan.reads
        mine = read_batches(plan, ranks=frozenset({0}))
        got = sorted(r for batch in mine for (r, _) in batch)
        want = sorted(
            r for r in range(len(reads)) if int(reads.proc[r]) == 0
        )
        assert got == want


class TestFaultSurfacing:
    """Injected read faults fire inside the prefetch thread but
    surface at consumption exactly as on the synchronous path."""

    def run(self, plan, chunks, mapping, grid, spec, **kw):
        return execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec, **kw
        )

    def test_degraded_result_identical(self):
        plan, chunks, mapping, grid, spec = make_plan(7)
        args = (plan, chunks, mapping, grid, spec)
        fplan = FaultPlan.flaky_read(chunk_id=0, times=None)
        sync = self.run(
            *args, on_error="degrade", fault_injector=FaultInjector(fplan)
        )
        pre = self.run(
            *args, on_error="degrade", fault_injector=FaultInjector(fplan),
            prefetch=PrefetchPolicy(depth=3, workers=2),
        )
        assert sorted(sync.chunk_errors) == [0]
        assert sorted(pre.chunk_errors) == sorted(sync.chunk_errors)
        assert pre.completeness == sync.completeness
        assert pre.n_reads == sync.n_reads
        assert pre.output_ids.tolist() == sync.output_ids.tolist()
        for pv, sv in zip(pre.chunk_values, sync.chunk_values):
            assert np.array_equal(pv, sv, equal_nan=True)

    def test_slow_read_in_fetch_thread_changes_nothing(self):
        plan, chunks, mapping, grid, spec = make_plan(7)
        args = (plan, chunks, mapping, grid, spec)
        clean = self.run(*args)
        stalled = self.run(
            *args,
            fault_injector=FaultInjector(FaultPlan.slow_read(0.02, times=3)),
            prefetch=PrefetchPolicy(depth=3, workers=2),
        )
        assert stalled.n_reads == clean.n_reads
        assert stalled.output_ids.tolist() == clean.output_ids.tolist()
        for pv, sv in zip(stalled.chunk_values, clean.chunk_values):
            assert np.array_equal(pv, sv, equal_nan=True)

    def test_raise_surfaces_injected_fault(self):
        plan, chunks, mapping, grid, spec = make_plan(7)
        fplan = FaultPlan.flaky_read(chunk_id=0, times=None)
        with pytest.raises(InjectedFault):
            self.run(
                plan, chunks, mapping, grid, spec,
                fault_injector=FaultInjector(fplan), prefetch=True,
            )


class TestLifecycle:
    def test_close_idempotent_and_pending_get_fails(self):
        batches = [[(0, 0)], [(1, 1)], [(2, 2)]]
        pf = TilePrefetcher(lambda gid: gid, batches, PrefetchPolicy(depth=1))
        pf.begin_tile(0)
        assert pf.get(0) == 0
        pf.close()
        pf.close()
        # Read 2 is two tiles beyond the consumer, so the one-tile-ahead
        # gate guarantees it was never claimed before the close.
        with pytest.raises(RuntimeError, match="closed"):
            pf.get(2)
