"""Tests for the binary chunk format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.chunk import Chunk
from repro.store.format import ChunkFormatError, decode_chunk, encode_chunk


def make_chunk(rng, n=10, ndim=2, comps=0, dtype=np.float64):
    coords = rng.uniform(0, 100, size=(n, ndim))
    shape = (n,) if comps == 0 else (n, comps)
    values = rng.uniform(0, 1, size=shape).astype(dtype)
    return Chunk.from_items(7, coords, values)


class TestRoundTrip:
    def test_basic(self, rng):
        chunk = make_chunk(rng)
        back = decode_chunk(encode_chunk(chunk))
        assert back.chunk_id == 7
        np.testing.assert_array_equal(back.coords, chunk.coords)
        np.testing.assert_array_equal(back.values, chunk.values)
        assert back.meta.mbr == chunk.meta.mbr

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32, np.uint8])
    def test_value_dtypes(self, rng, dtype):
        chunk = make_chunk(rng, dtype=dtype)
        back = decode_chunk(encode_chunk(chunk))
        assert back.values.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(back.values, chunk.values)

    def test_multicomponent_values(self, rng):
        chunk = make_chunk(rng, comps=3)
        back = decode_chunk(encode_chunk(chunk))
        assert back.values.shape == chunk.values.shape

    @given(
        st.integers(0, 2**31),
        st.integers(1, 4),
        st.integers(1, 30),
        st.integers(0, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, ndim, n, comps):
        rng = np.random.default_rng(seed)
        chunk = make_chunk(rng, n=n, ndim=ndim, comps=comps)
        back = decode_chunk(encode_chunk(chunk))
        np.testing.assert_array_equal(back.coords, chunk.coords)
        np.testing.assert_array_equal(back.values, chunk.values)


class TestCorruption:
    def test_flipped_payload_byte_detected(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[60] ^= 0xFF
        with pytest.raises(ChunkFormatError, match="CRC|corrupt"):
            decode_chunk(bytes(data))

    def test_truncated(self, rng):
        data = encode_chunk(make_chunk(rng))
        with pytest.raises(ChunkFormatError, match="length|short"):
            decode_chunk(data[:-5])

    def test_too_short_for_header(self):
        with pytest.raises(ChunkFormatError, match="short"):
            decode_chunk(b"x" * 10)

    def test_bad_magic(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[0:4] = b"NOPE"
        with pytest.raises(ChunkFormatError, match="magic"):
            decode_chunk(bytes(data))

    def test_bad_version(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[4] = 99
        with pytest.raises(ChunkFormatError, match="version"):
            decode_chunk(bytes(data))
