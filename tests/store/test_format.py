"""Tests for the binary chunk format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.chunk import Chunk
from repro.dataset.synopsis import ValueSynopsis
from repro.store.format import (
    ChunkFormatError,
    CorruptChunkError,
    decode_chunk,
    decode_synopsis,
    encode_chunk,
)


def make_chunk(rng, n=10, ndim=2, comps=0, dtype=np.float64):
    coords = rng.uniform(0, 100, size=(n, ndim))
    shape = (n,) if comps == 0 else (n, comps)
    values = rng.uniform(0, 1, size=shape).astype(dtype)
    return Chunk.from_items(7, coords, values)


class TestRoundTrip:
    def test_basic(self, rng):
        chunk = make_chunk(rng)
        back = decode_chunk(encode_chunk(chunk))
        assert back.chunk_id == 7
        np.testing.assert_array_equal(back.coords, chunk.coords)
        np.testing.assert_array_equal(back.values, chunk.values)
        assert back.meta.mbr == chunk.meta.mbr

    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32, np.uint8])
    def test_value_dtypes(self, rng, dtype):
        chunk = make_chunk(rng, dtype=dtype)
        back = decode_chunk(encode_chunk(chunk))
        assert back.values.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(back.values, chunk.values)

    def test_multicomponent_values(self, rng):
        chunk = make_chunk(rng, comps=3)
        back = decode_chunk(encode_chunk(chunk))
        assert back.values.shape == chunk.values.shape

    @given(
        st.integers(0, 2**31),
        st.integers(1, 4),
        st.integers(1, 30),
        st.integers(0, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, seed, ndim, n, comps):
        rng = np.random.default_rng(seed)
        chunk = make_chunk(rng, n=n, ndim=ndim, comps=comps)
        back = decode_chunk(encode_chunk(chunk))
        np.testing.assert_array_equal(back.coords, chunk.coords)
        np.testing.assert_array_equal(back.values, chunk.values)

    @given(
        st.integers(0, 2**31),
        st.integers(1, 4),
        st.integers(1, 30),
        st.integers(0, 3),
        st.sampled_from([np.float32, np.float64, np.int32, np.uint8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_dtypes_property(self, seed, ndim, n, comps, dtype):
        """Checksum round-trip holds across payload dtypes and shapes."""
        rng = np.random.default_rng(seed)
        chunk = make_chunk(rng, n=n, ndim=ndim, comps=comps, dtype=dtype)
        back = decode_chunk(encode_chunk(chunk))
        assert back.values.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(back.coords, chunk.coords)
        np.testing.assert_array_equal(back.values, chunk.values)


class TestCorruption:
    def test_flipped_payload_byte_detected(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[60] ^= 0xFF
        with pytest.raises(ChunkFormatError, match="CRC|corrupt"):
            decode_chunk(bytes(data))

    def test_truncated(self, rng):
        # Truncation surfaces as a CRC failure (the CRC is verified
        # before any body-derived length arithmetic is trusted).
        data = encode_chunk(make_chunk(rng))
        with pytest.raises(ChunkFormatError, match="length|short|CRC|corrupt"):
            decode_chunk(data[:-5])

    def test_too_short_for_header(self):
        with pytest.raises(ChunkFormatError, match="short"):
            decode_chunk(b"x" * 10)

    def test_bad_magic(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[0:4] = b"NOPE"
        with pytest.raises(ChunkFormatError, match="magic"):
            decode_chunk(bytes(data))

    def test_bad_version(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[4] = 99
        with pytest.raises(ChunkFormatError, match="version"):
            decode_chunk(bytes(data))


class TestCorruptionErrorTaxonomy:
    """Damage is CorruptChunkError; wrong format stays ChunkFormatError."""

    def test_crc_mismatch_is_corrupt(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[-1] ^= 0xFF
        with pytest.raises(CorruptChunkError):
            decode_chunk(bytes(data))

    def test_truncation_is_corrupt(self, rng):
        data = encode_chunk(make_chunk(rng))
        with pytest.raises(CorruptChunkError):
            decode_chunk(data[:-5])
        with pytest.raises(CorruptChunkError):
            decode_chunk(data[:10])

    def test_bad_magic_is_not_corrupt(self, rng):
        """Wrong format is permanent: a retry policy matching only
        CorruptChunkError must not spin on it."""
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[0:4] = b"NOPE"
        with pytest.raises(ChunkFormatError) as excinfo:
            decode_chunk(bytes(data))
        assert not isinstance(excinfo.value, CorruptChunkError)

    def test_corrupt_is_a_format_error(self):
        assert issubclass(CorruptChunkError, ChunkFormatError)

    @given(st.integers(0, 2**31), st.integers(0, 2000))
    @settings(max_examples=40, deadline=None)
    def test_any_flipped_body_byte_raises(self, seed, pos):
        """Property: flipping any CRC-protected body byte (everything
        after the 44-byte header) always raises -- no silent bit-rot.
        Header fields are validated at the store layer (id check)."""
        from repro.store.format import _HEADER

        rng = np.random.default_rng(seed)
        data = bytearray(encode_chunk(make_chunk(rng)))
        pos = _HEADER.size + pos % (len(data) - _HEADER.size)
        data[pos] ^= 0x01
        with pytest.raises(CorruptChunkError):
            decode_chunk(bytes(data))


def as_version1(data: bytes) -> bytes:
    """Rewrite a v2 encoding as the version-1 layout (no synopsis
    block), recomputing the CRC -- a faithful old-format file."""
    import zlib
    from math import prod

    from repro.store.format import _HEADER

    fields = list(_HEADER.unpack_from(data))
    _, _, ndim, _, _, _, _, dtype_len, rank, _ = fields
    body = bytearray(data[_HEADER.size :])
    trailing = np.frombuffer(
        bytes(body), dtype="<i8", count=rank, offset=dtype_len
    ).tolist()
    k = prod(trailing) if trailing else 1
    syn_start = dtype_len + 8 * rank + 16 * ndim
    del body[syn_start : syn_start + 24 * k]
    fields[1] = 1  # version
    fields[9] = zlib.crc32(bytes(body))
    return _HEADER.pack(*fields) + bytes(body)


class TestSynopsisBlock:
    """The v2 value-synopsis block and v1 backward compatibility."""

    @pytest.mark.parametrize("comps", [0, 3])
    def test_decode_synopsis_matches_values(self, rng, comps):
        chunk = make_chunk(rng, comps=comps)
        vmin, vmax, nulls, count = decode_synopsis(encode_chunk(chunk))
        evmin, evmax, enulls, ecount = ValueSynopsis.summarize_values(chunk.values)
        np.testing.assert_array_equal(vmin, evmin)
        np.testing.assert_array_equal(vmax, evmax)
        np.testing.assert_array_equal(nulls, enulls)
        assert count == ecount

    def test_decode_synopsis_with_nans(self, rng):
        coords = rng.uniform(0, 10, size=(6, 2))
        values = np.array([1.0, np.nan, 3.0, np.nan, np.nan, 2.0])
        chunk = Chunk.from_items(1, coords, values)
        vmin, vmax, nulls, count = decode_synopsis(encode_chunk(chunk))
        assert (vmin[0], vmax[0], nulls[0], count) == (1.0, 3.0, 3, 6)

    def test_decode_synopsis_int_values(self, rng):
        chunk = make_chunk(rng, dtype=np.int32)
        vmin, vmax, nulls, _ = decode_synopsis(encode_chunk(chunk))
        assert vmin[0] == chunk.values.min()
        assert vmax[0] == chunk.values.max()
        assert nulls[0] == 0

    def test_v1_chunk_still_decodes(self, rng):
        chunk = make_chunk(rng, comps=2)
        old = as_version1(encode_chunk(chunk))
        back = decode_chunk(old)
        np.testing.assert_array_equal(back.coords, chunk.coords)
        np.testing.assert_array_equal(back.values, chunk.values)

    def test_v1_synopsis_recomputed_from_values(self, rng):
        chunk = make_chunk(rng, comps=2)
        old = as_version1(encode_chunk(chunk))
        vmin, vmax, nulls, count = decode_synopsis(old)
        evmin, evmax, enulls, ecount = ValueSynopsis.summarize_values(chunk.values)
        np.testing.assert_array_equal(vmin, evmin)
        np.testing.assert_array_equal(vmax, evmax)
        np.testing.assert_array_equal(nulls, enulls)
        assert count == ecount

    def test_decode_synopsis_detects_corruption(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[50] ^= 0xFF
        with pytest.raises(CorruptChunkError):
            decode_synopsis(bytes(data))

    def test_decode_synopsis_bad_magic(self, rng):
        data = bytearray(encode_chunk(make_chunk(rng)))
        data[0:4] = b"NOPE"
        with pytest.raises(ChunkFormatError, match="magic"):
            decode_synopsis(bytes(data))
