"""CachedChunkStore (LRU payload cache) and read_many batching."""

import numpy as np
import pytest

from repro.dataset.chunk import Chunk
from repro.faults import FaultInjector, FaultPlan, FaultyChunkStore, InjectedFault
from repro.store.cache import CachedChunkStore
from repro.store.chunk_store import FileChunkStore, MemoryChunkStore
from repro.store.format import CorruptChunkError


def make_chunks(rng, n=5, items=4):
    out = []
    for i in range(n):
        coords = rng.uniform(0, 10, size=(items, 2))
        out.append(Chunk.from_items(i, coords, rng.normal(size=items)))
    return out


def chunk_bytes(chunk):
    return chunk.coords.nbytes + chunk.values.nbytes


@pytest.fixture
def filled(rng):
    """A cached memory store holding 5 same-size chunks of 'ds'."""
    inner = MemoryChunkStore()
    chunks = make_chunks(rng)
    for i, c in enumerate(chunks):
        inner.write_chunk("ds", c, node=i % 2, disk=0)
    return CachedChunkStore(inner), chunks


class TestCacheBasics:
    def test_hit_serves_same_object(self, filled):
        store, _ = filled
        a = store.read_chunk("ds", 0)
        b = store.read_chunk("ds", 0)
        assert a is b  # served from cache, not re-decoded
        assert store.hits == 1 and store.misses == 1
        assert len(store) == 1 and store.nbytes == chunk_bytes(a)

    def test_stacking_refused(self, filled):
        store, _ = filled
        with pytest.raises(ValueError, match="stack"):
            CachedChunkStore(store)

    def test_inner_extras_pass_through(self, tmp_path):
        store = CachedChunkStore(FileChunkStore(tmp_path / "farm"))
        assert store.root == tmp_path / "farm"

    def test_stats_keys(self, filled):
        store, _ = filled
        store.read_chunk("ds", 0)
        stats = store.stats()
        assert stats["chunk_misses"] == 1 and stats["chunk_bytes"] > 0


class TestEviction:
    def test_lru_eviction_by_bytes(self, filled, rng):
        _, chunks = filled
        inner = MemoryChunkStore()
        for i, c in enumerate(chunks):
            inner.write_chunk("ds", c, node=0, disk=0)
        store = CachedChunkStore(inner, max_bytes=2 * chunk_bytes(chunks[0]))
        store.read_chunk("ds", 0)
        store.read_chunk("ds", 1)
        assert len(store) == 2
        store.read_chunk("ds", 0)  # touch 0: chunk 1 becomes LRU
        store.read_chunk("ds", 2)  # evicts 1
        assert store.evictions == 1
        hits_before = store.hits
        store.read_chunk("ds", 0)
        assert store.hits == hits_before + 1  # 0 survived
        misses_before = store.misses
        store.read_chunk("ds", 1)
        assert store.misses == misses_before + 1  # 1 was evicted

    def test_oversized_chunk_not_cached(self, filled):
        _, chunks = filled
        inner = MemoryChunkStore()
        inner.write_chunk("ds", chunks[0], 0, 0)
        store = CachedChunkStore(inner, max_bytes=chunk_bytes(chunks[0]) - 1)
        store.read_chunk("ds", 0)
        assert len(store) == 0 and store.nbytes == 0


class TestInvalidation:
    def test_write_invalidates(self, filled, rng):
        store, _ = filled
        stale = store.read_chunk("ds", 0)
        replacement = Chunk.from_items(
            0, rng.uniform(0, 10, size=(4, 2)), rng.normal(size=4)
        )
        store.write_chunk("ds", replacement, 0, 0)
        fresh = store.read_chunk("ds", 0)
        assert fresh is not stale
        np.testing.assert_array_equal(fresh.values, replacement.values)

    def test_write_chunks_invalidates_and_falls_back(self, filled, rng):
        """MemoryChunkStore has no bulk write; the wrapper must fall
        back to per-chunk writes after invalidating."""
        store, _ = filled
        store.read_chunk("ds", 0)
        store.read_chunk("ds", 1)
        fresh = make_chunks(rng, 2)
        store.write_chunks("ds", fresh, [(0, 0), (1, 0)])
        assert len(store) == 0
        got = store.read_chunk("ds", 1)
        np.testing.assert_array_equal(got.coords, fresh[1].coords)

    def test_delete_dataset_drops_only_that_dataset(self, filled, rng):
        store, _ = filled
        other = make_chunks(rng, 1)[0]
        store.inner.write_chunk("other", other, 0, 0)
        store.read_chunk("ds", 0)
        store.read_chunk("other", 0)
        store.delete_dataset("ds")
        assert len(store) == 1 and store.nbytes == chunk_bytes(other)
        with pytest.raises(KeyError):
            store.read_chunk("ds", 0)

    def test_invalidate_specific_ids(self, filled):
        store, _ = filled
        store.read_chunk("ds", 0)
        store.read_chunk("ds", 1)
        store.invalidate("ds", [0])
        assert len(store) == 1


class TestReadMany:
    def test_caller_order_with_duplicates_and_hits(self, filled):
        store, _ = filled
        store.read_chunk("ds", 3)  # warm one entry
        got = [c.chunk_id for c in store.read_many("ds", [3, 1, 3, 0, 1])]
        assert got == [3, 1, 3, 0, 1]
        assert store.hits == 1  # the warm 3; duplicates are visited once
        assert store.misses == 3  # 1, 0 and the initial cold 3
        # everything is cached now: a second pass is all hits
        list(store.read_many("ds", [0, 1, 3]))
        assert store.misses == 3

    def test_misses_fetched_through_inner_batch(self, filled, monkeypatch):
        store, _ = filled
        seen = []
        original = type(store.inner).read_many

        def spy(self, dataset, chunk_ids):
            seen.append(list(chunk_ids))
            return original(self, dataset, chunk_ids)

        monkeypatch.setattr(type(store.inner), "read_many", spy)
        store.read_chunk("ds", 2)
        list(store.read_many("ds", [2, 4, 0]))
        assert seen == [[4, 0]]  # only the misses, one batch


class TestCacheFailureHandling:
    """Failed reads are never cached; successes around a failure are."""

    def make_faulty(self, rng, plan):
        inner = MemoryChunkStore()
        for c in make_chunks(rng):
            inner.write_chunk("ds", c, 0, 0)
        return CachedChunkStore(FaultyChunkStore(inner, FaultInjector(plan)))

    def test_failure_not_cached_then_retry_reaches_inner(self, rng):
        store = self.make_faulty(rng, FaultPlan.flaky_read(chunk_id=1, times=1))
        with pytest.raises(InjectedFault):
            store.read_chunk("ds", 1)
        assert len(store) == 0  # the failure left no cache entry
        assert store.read_chunk("ds", 1).chunk_id == 1  # retry hits inner
        assert len(store) == 1

    def test_read_many_caches_successful_prefix(self, rng):
        store = self.make_faulty(rng, FaultPlan.corrupt_chunk(1))
        it = store.read_many("ds", [0, 1, 2])
        assert next(it).chunk_id == 0
        with pytest.raises(CorruptChunkError):
            next(it)
        assert len(store) == 1  # chunk 0 cached, the failure not
        hits = store.hits
        store.read_chunk("ds", 0)
        assert store.hits == hits + 1

    def test_cache_hits_served_before_failure_position(self, rng):
        store = self.make_faulty(rng, FaultPlan.corrupt_chunk(2))
        store.read_chunk("ds", 3)  # warm an unaffected chunk
        it = store.read_many("ds", [3, 2, 0])
        assert next(it).chunk_id == 3
        with pytest.raises(CorruptChunkError):
            next(it)


class TestFileStoreBatching:
    def test_reads_happen_in_placement_order(self, tmp_path, rng, monkeypatch):
        """read_many visits the farm disk by disk (ascending chunk id
        within a disk), regardless of the caller's order."""
        store = FileChunkStore(tmp_path / "farm")
        chunks = make_chunks(rng, 6)
        placements = [(0, 1), (1, 0), (0, 0), (1, 0), (0, 1), (0, 0)]
        store.write_chunks("ds", chunks, placements)

        fetched = []
        original = FileChunkStore.read_chunk

        def spy(self, dataset, chunk_id):
            fetched.append(chunk_id)
            return original(self, dataset, chunk_id)

        monkeypatch.setattr(FileChunkStore, "read_chunk", spy)
        order = [4, 1, 5, 0, 2, 3, 4]
        got = [c.chunk_id for c in store.read_many("ds", order)]
        assert got == order  # caller order preserved, duplicate served twice
        # physical order: (node, disk, id) ascending, each id read once
        assert fetched == [2, 5, 0, 4, 1, 3]


class TestPinning:
    """Shared-scan pinning: pinned payloads survive eviction pressure
    for the lifetime of a batch (the query service pins a batch's
    consecutive-overlap set, then unpins when the batch completes)."""

    def test_pinned_chunk_survives_eviction_pressure(self, filled):
        _, chunks = filled
        inner = MemoryChunkStore()
        for c in chunks:
            inner.write_chunk("ds", c, node=0, disk=0)
        store = CachedChunkStore(inner, max_bytes=2 * chunk_bytes(chunks[0]))
        store.pin("ds", [0])
        store.read_chunk("ds", 0)
        store.read_chunk("ds", 1)
        store.read_chunk("ds", 2)  # would evict LRU chunk 0 if unpinned
        store.read_chunk("ds", 3)
        hits_before = store.hits
        store.read_chunk("ds", 0)
        assert store.hits == hits_before + 1  # still resident
        store.unpin("ds", [0])

    def test_unpinned_chunk_becomes_ordinary_victim(self, filled):
        _, chunks = filled
        inner = MemoryChunkStore()
        for c in chunks:
            inner.write_chunk("ds", c, node=0, disk=0)
        store = CachedChunkStore(inner, max_bytes=2 * chunk_bytes(chunks[0]))
        store.pin("ds", [0])
        store.read_chunk("ds", 0)
        store.read_chunk("ds", 1)
        store.unpin("ds", [0])
        assert store.pinned_count == 0
        store.read_chunk("ds", 2)  # chunk 0 is LRU and evictable again
        misses_before = store.misses
        store.read_chunk("ds", 0)
        assert store.misses == misses_before + 1

    def test_pin_is_refcounted(self, filled):
        store, _ = filled
        store.pin("ds", [0, 1])
        store.pin("ds", [0])  # second batch pins chunk 0 too
        store.unpin("ds", [0, 1])
        assert store.pinned_count == 1  # chunk 0 still held once
        store.unpin("ds", [0])
        assert store.pinned_count == 0

    def test_unpin_unknown_key_is_ignored(self, filled):
        store, _ = filled
        store.unpin("ds", [99])
        assert store.pinned_count == 0

    def test_pinned_oversized_chunk_is_cached_anyway(self, filled):
        """An over-budget pinned insert is a bounded, deliberate
        overshoot: the batch that pinned it needs it resident."""
        _, chunks = filled
        inner = MemoryChunkStore()
        inner.write_chunk("ds", chunks[0], 0, 0)
        store = CachedChunkStore(inner, max_bytes=chunk_bytes(chunks[0]) - 1)
        store.pin("ds", [0])
        store.read_chunk("ds", 0)
        assert len(store) == 1
        assert store.nbytes > store.max_bytes
        store.unpin("ds", [0])

    def test_all_pinned_cache_stops_evicting(self, filled):
        _, chunks = filled
        inner = MemoryChunkStore()
        for c in chunks:
            inner.write_chunk("ds", c, node=0, disk=0)
        store = CachedChunkStore(inner, max_bytes=2 * chunk_bytes(chunks[0]))
        store.pin("ds", [0, 1, 2])
        store.read_chunk("ds", 0)
        store.read_chunk("ds", 1)
        store.read_chunk("ds", 2)  # over budget, nothing evictable
        assert len(store) == 3
        assert store.evictions == 0
        store.unpin("ds", [0, 1, 2])


class TestScanRecorder:
    """Per-query attribution of cache traffic (exact even when many
    queries share the cache concurrently, unlike global-counter deltas)."""

    def test_records_miss_then_hit(self, filled):
        from repro.store.cache import ScanRecorder

        store, chunks = filled
        recorder = ScanRecorder()
        store.read_chunk("ds", 0, recorder=recorder)
        store.read_chunk("ds", 0, recorder=recorder)
        snap = recorder.snapshot()
        size = chunk_bytes(chunks[0])
        assert snap == {"hits": 1, "misses": 1,
                        "hit_bytes": size, "miss_bytes": size}

    def test_recorders_are_independent(self, filled):
        from repro.store.cache import ScanRecorder

        store, _ = filled
        first, second = ScanRecorder(), ScanRecorder()
        store.read_chunk("ds", 0, recorder=first)   # miss, warms cache
        store.read_chunk("ds", 0, recorder=second)  # hit for second only
        assert first.snapshot()["hits"] == 0
        assert second.snapshot() == {
            "hits": 1, "misses": 0,
            "hit_bytes": second.snapshot()["hit_bytes"], "miss_bytes": 0,
        }
        assert second.snapshot()["hit_bytes"] > 0

    def test_reads_without_recorder_still_count_globally(self, filled):
        store, _ = filled
        store.read_chunk("ds", 0)
        store.read_chunk("ds", 0)
        assert store.hits == 1 and store.misses == 1
