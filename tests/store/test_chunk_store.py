"""Tests for chunk stores (file-backed and in-memory)."""

import numpy as np
import pytest

from repro.dataset.chunk import Chunk
from repro.store.chunk_store import FileChunkStore, MemoryChunkStore
from repro.store.format import ChunkFormatError, CorruptChunkError


def make_chunks(rng, n=5):
    out = []
    for i in range(n):
        coords = rng.uniform(0, 10, size=(4, 2))
        out.append(Chunk.from_items(i, coords, rng.normal(size=4)))
    return out


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryChunkStore()
    return FileChunkStore(tmp_path / "farm")


class TestStoreInterface:
    def test_write_read_roundtrip(self, store, rng):
        chunks = make_chunks(rng)
        for i, c in enumerate(chunks):
            store.write_chunk("ds", c, node=i % 2, disk=0)
        for i, c in enumerate(chunks):
            back = store.read_chunk("ds", i)
            np.testing.assert_array_equal(back.coords, c.coords)
            np.testing.assert_array_equal(back.values, c.values)

    def test_placement(self, store, rng):
        c = make_chunks(rng, 1)[0]
        store.write_chunk("ds", c, node=3, disk=1)
        assert store.placement("ds", 0) == (3, 1)
        assert store.placements("ds") == {0: (3, 1)}

    def test_chunk_ids_sorted(self, store, rng):
        for c in reversed(make_chunks(rng, 4)):
            store.write_chunk("ds", c, 0, 0)
        assert store.chunk_ids("ds") == [0, 1, 2, 3]

    def test_missing_chunk(self, store, rng):
        store.write_chunk("ds", make_chunks(rng, 1)[0], 0, 0)
        with pytest.raises(KeyError):
            store.read_chunk("ds", 99)

    def test_missing_dataset(self, store):
        with pytest.raises(KeyError):
            store.chunk_ids("absent") if isinstance(store, FileChunkStore) else store.read_chunk("absent", 0)

    def test_delete_dataset(self, store, rng):
        store.write_chunk("ds", make_chunks(rng, 1)[0], 0, 0)
        store.delete_dataset("ds")
        with pytest.raises(KeyError):
            store.read_chunk("ds", 0)

    def test_negative_placement_rejected(self, store, rng):
        with pytest.raises(ValueError):
            store.write_chunk("ds", make_chunks(rng, 1)[0], -1, 0)

    def test_read_many_order(self, store, rng):
        for c in make_chunks(rng, 3):
            store.write_chunk("ds", c, 0, 0)
        got = [c.chunk_id for c in store.read_many("ds", [2, 0, 1])]
        assert got == [2, 0, 1]

    def test_multiple_datasets_isolated(self, store, rng):
        a, b = make_chunks(rng, 2)
        store.write_chunk("d1", a, 0, 0)
        store.write_chunk("d2", b, 1, 0)
        assert store.chunk_ids("d1") == [0]
        assert store.placement("d2", 1) == (1, 0)


class TestFileStoreSpecifics:
    def test_reopen_from_manifest(self, tmp_path, rng):
        root = tmp_path / "farm"
        chunks = make_chunks(rng, 3)
        s1 = FileChunkStore(root)
        s1.write_chunks("ds", chunks, [(0, 0), (1, 0), (0, 0)])
        s2 = FileChunkStore(root)  # fresh handle, manifest-driven
        assert s2.chunk_ids("ds") == [0, 1, 2]
        assert s2.placement("ds", 1) == (1, 0)
        np.testing.assert_array_equal(s2.read_chunk("ds", 2).coords, chunks[2].coords)

    def test_directory_layout(self, tmp_path, rng):
        s = FileChunkStore(tmp_path / "farm")
        s.write_chunk("ds", make_chunks(rng, 1)[0], node=2, disk=1)
        expected = tmp_path / "farm" / "ds" / "node002" / "disk01" / "chunk00000000.adc"
        assert expected.exists()

    def test_corrupt_file_detected(self, tmp_path, rng):
        s = FileChunkStore(tmp_path / "farm")
        s.write_chunk("ds", make_chunks(rng, 1)[0], 0, 0)
        path = tmp_path / "farm" / "ds" / "node000" / "disk00" / "chunk00000000.adc"
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ChunkFormatError):
            s.read_chunk("ds", 0)

    def test_missing_file_with_manifest_entry(self, tmp_path, rng):
        s = FileChunkStore(tmp_path / "farm")
        s.write_chunk("ds", make_chunks(rng, 1)[0], 0, 0)
        (tmp_path / "farm" / "ds" / "node000" / "disk00" / "chunk00000000.adc").unlink()
        with pytest.raises(ChunkFormatError, match="missing"):
            s.read_chunk("ds", 0)

    def test_invalid_dataset_name(self, tmp_path, rng):
        s = FileChunkStore(tmp_path / "farm")
        with pytest.raises(ValueError):
            s.write_chunk("../evil", make_chunks(rng, 1)[0], 0, 0)

    def test_bulk_write_length_mismatch(self, tmp_path, rng):
        s = FileChunkStore(tmp_path / "farm")
        with pytest.raises(ValueError):
            s.write_chunks("ds", make_chunks(rng, 2), [(0, 0)])


class TestReadManyPartialFailure:
    """The partial-failure contract documented on ChunkStore.read_many:
    successes yield in caller order, the first failed id raises its own
    error at its position, and no id is silently skipped."""

    @staticmethod
    def corrupt_file(store, chunk_id):
        path = store._chunk_path("ds", chunk_id, *store.placement("ds", chunk_id))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_failure_raises_at_caller_position(self, tmp_path, rng):
        store = FileChunkStore(tmp_path / "farm")
        for c in make_chunks(rng, 4):
            store.write_chunk("ds", c, 0, 0)
        self.corrupt_file(store, 1)
        it = store.read_many("ds", [2, 0, 1, 3])
        assert next(it).chunk_id == 2
        assert next(it).chunk_id == 0
        with pytest.raises(CorruptChunkError):
            next(it)

    def test_every_distinct_id_attempted(self, tmp_path, rng, monkeypatch):
        """A failure on one disk must not abandon the other disks'
        scans (their reads may be served from the OS cache on retry)."""
        store = FileChunkStore(tmp_path / "farm")
        store.write_chunks("ds", make_chunks(rng, 3), [(0, 0), (1, 0), (2, 0)])
        self.corrupt_file(store, 0)
        attempted = []
        original = FileChunkStore.read_chunk

        def spy(self, dataset, chunk_id):
            attempted.append(chunk_id)
            return original(self, dataset, chunk_id)

        monkeypatch.setattr(FileChunkStore, "read_chunk", spy)
        with pytest.raises(CorruptChunkError):
            list(store.read_many("ds", [0, 1, 2]))
        assert sorted(attempted) == [0, 1, 2]

    def test_duplicates_before_failure_still_served(self, tmp_path, rng):
        store = FileChunkStore(tmp_path / "farm")
        for c in make_chunks(rng, 3):
            store.write_chunk("ds", c, 0, 0)
        self.corrupt_file(store, 2)
        it = store.read_many("ds", [1, 1, 2, 0])
        assert [next(it).chunk_id, next(it).chunk_id] == [1, 1]
        with pytest.raises(CorruptChunkError):
            next(it)

    def test_absence_raises_at_position_memory(self, rng):
        """The base-class implementation (MemoryChunkStore) honors the
        same contract for absent ids."""
        store = MemoryChunkStore()
        for c in make_chunks(rng, 2):
            store.write_chunk("ds", c, 0, 0)
        it = store.read_many("ds", [1, 99, 0])
        assert next(it).chunk_id == 1
        with pytest.raises(KeyError):
            next(it)


class TestMemoryStoreSpecifics:
    def test_nbytes_accounting(self, rng):
        s = MemoryChunkStore()
        assert s.nbytes() == 0
        s.write_chunk("ds", make_chunks(rng, 1)[0], 0, 0)
        assert s.nbytes() > 0
