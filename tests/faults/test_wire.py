"""Tests for the wire-level chaos proxy and its fault plans."""

import time

import numpy as np
import pytest

from repro.dataset.partition import hilbert_partition
from repro.faults.wire import (
    WIRE_FAULT_KINDS,
    ChaosProxy,
    WireFaultPlan,
    WireFaultSpec,
)
from repro.frontend.adr import ADR
from repro.frontend.protocol import ProtocolError
from repro.frontend.service import ADRClient, ADRServer
from repro.machine.config import MachineConfig
from repro.space.attribute_space import AttributeSpace
from repro.util.units import MB


@pytest.fixture
def server(rng):
    adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
    space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
    coords = rng.uniform(0, 10, size=(100, 2))
    values = rng.integers(1, 20, size=100).astype(float)
    adr.load("sensors", space, hilbert_partition(coords, values, 20))
    with ADRServer(adr, port=0) as srv:
        yield srv


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown wire fault kind"):
            WireFaultSpec("explode")

    def test_bounds_enforced(self):
        with pytest.raises(ValueError, match="probability"):
            WireFaultSpec("refuse", p=1.5)
        with pytest.raises(ValueError, match="times"):
            WireFaultSpec("refuse", times=0)
        with pytest.raises(ValueError, match="delay_s"):
            WireFaultSpec("delay", delay_s=-1.0)
        with pytest.raises(ValueError, match="after_bytes"):
            WireFaultSpec("cut", after_bytes=-1)

    def test_every_kind_constructible(self):
        for kind in WIRE_FAULT_KINDS:
            assert WireFaultSpec(kind).kind == kind


class TestPlanConstructors:
    def test_constructors_map_to_specs(self):
        assert WireFaultPlan.refuse(times=None).specs[0] == WireFaultSpec(
            "refuse", times=None
        )
        assert WireFaultPlan.slow(2.5).specs[0] == WireFaultSpec(
            "delay", delay_s=2.5
        )
        assert WireFaultPlan.cut().specs[0] == WireFaultSpec(
            "cut", after_bytes=6
        )
        assert WireFaultPlan.corrupt(after_bytes=9).specs[0] == WireFaultSpec(
            "corrupt", after_bytes=9
        )

    def test_extend_preserves_seed(self):
        plan = WireFaultPlan.refuse(seed=7).extend(WireFaultSpec("cut"))
        assert len(plan) == 2
        assert plan.seed == 7


def client_through(proxy, timeout=5.0):
    return ADRClient(*proxy.address, timeout=timeout)


class TestChaosProxy:
    def test_clean_plan_forwards_verbatim(self, server):
        with ChaosProxy(server.address, WireFaultPlan()) as proxy:
            with client_through(proxy) as client:
                assert client.ping()
                stats = client.stats()
        assert stats["policy"]["max_queue"] > 0

    def test_refuse_once_then_heals(self, server):
        with ChaosProxy(server.address, WireFaultPlan.refuse(times=1)) as proxy:
            with pytest.raises((OSError, ProtocolError)):
                with client_through(proxy) as client:
                    client.ping()
            # The spec is spent: the next connection passes untouched.
            with client_through(proxy) as client:
                assert client.ping()

    def test_refuse_all_never_heals(self, server):
        with ChaosProxy(server.address, WireFaultPlan.refuse(times=None)) as proxy:
            for _ in range(3):
                with pytest.raises((OSError, ProtocolError)):
                    with client_through(proxy) as client:
                        client.ping()

    def test_cut_surfaces_torn_frame(self, server):
        with ChaosProxy(server.address, WireFaultPlan.cut(after_bytes=6)) as proxy:
            with client_through(proxy) as client:
                with pytest.raises(ProtocolError, match="torn frame"):
                    client.ping()
                # A half-finished exchange poisons the client loudly.
                with pytest.raises(ConnectionError, match="broken"):
                    client.ping()

    def test_corrupt_header_declares_oversized_frame(self, server):
        """Flipping the response's first byte turns the 4-byte length
        header into an absurd declared length the client must refuse
        before reading (or allocating) anything."""
        with ChaosProxy(server.address, WireFaultPlan.corrupt(after_bytes=0)) as proxy:
            with client_through(proxy) as client:
                with pytest.raises(ProtocolError, match="exceeds MAX_FRAME_BYTES"):
                    client.ping()

    def test_corrupt_payload_breaks_the_json(self, server):
        with ChaosProxy(server.address, WireFaultPlan.corrupt(after_bytes=8)) as proxy:
            with client_through(proxy) as client:
                with pytest.raises(ProtocolError, match="bad frame payload"):
                    client.ping()

    def test_delay_stalls_at_least_delay_seconds(self, server):
        with ChaosProxy(server.address, WireFaultPlan.slow(0.3)) as proxy:
            with client_through(proxy) as client:
                start = time.monotonic()
                assert client.ping()
                assert time.monotonic() - start >= 0.3

    def test_zero_probability_never_fires(self, server):
        plan = WireFaultPlan(
            (WireFaultSpec("refuse", p=0.0, times=None),), seed=3
        )
        with ChaosProxy(server.address, plan) as proxy:
            for _ in range(3):
                with client_through(proxy) as client:
                    assert client.ping()

    def test_close_converges_with_connection_open(self, server):
        proxy = ChaosProxy(server.address, WireFaultPlan()).start()
        client = client_through(proxy)
        assert client.ping()
        start = time.monotonic()
        proxy.close()
        assert time.monotonic() - start < 10.0
        client.close()
