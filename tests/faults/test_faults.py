"""The deterministic fault-injection harness.

Determinism is the whole point: a FaultPlan with a seed must make the
same decisions on every run, and two injectors built from the same
plan must fire identically.
"""

import numpy as np
import pytest

from repro.dataset.chunk import Chunk
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyChunkStore,
    InjectedFault,
)
from repro.store.chunk_store import MemoryChunkStore
from repro.store.format import CorruptChunkError


def make_store(rng, n_chunks=4):
    store = MemoryChunkStore()
    for cid in range(n_chunks):
        coords = rng.uniform(0, 10, size=(5, 2))
        values = rng.uniform(0, 1, size=(5, 1))
        store.write_chunk("d", Chunk.from_items(cid, coords, values), 0, 0)
    return store


class TestFaultSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor_strike")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("io_error", p=1.5)

    def test_times_bounds(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec("io_error", times=0)

    def test_crash_needs_rank(self):
        with pytest.raises(ValueError, match="rank"):
            FaultSpec("worker_crash")

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            FaultSpec(kind, rank=0 if kind == "worker_crash" else None)


class TestInjectorDeterminism:
    def test_same_plan_same_decisions(self):
        """Two injectors from one probabilistic plan fire identically."""
        plan = FaultPlan(
            (FaultSpec("io_error", p=0.5, times=None),), seed=42
        )
        decisions = []
        for _ in range(2):
            inj = FaultInjector(plan)
            run = []
            for read in range(50):
                try:
                    inj.apply_read_faults("d", read)
                    run.append(False)
                except InjectedFault:
                    run.append(True)
            decisions.append(run)
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])  # p=0.5 mixes

    def test_per_spec_streams_independent(self):
        """Adding a spec must not perturb another spec's draws."""

        def decisions(plan):
            inj = FaultInjector(plan)
            out = []
            for read in range(40):
                fired = inj.read_faults("d", read)
                out.append(any(s.kind == "slow_read" for s in fired))
            return out

        probe = FaultSpec("slow_read", p=0.5, times=None, delay=0.0)
        alone = decisions(FaultPlan((probe,), seed=7))
        with_other = decisions(
            FaultPlan((probe, FaultSpec("corrupt", chunk_id=999)), seed=7)
        )
        assert alone == with_other

    def test_times_bounds_firings(self):
        inj = FaultInjector(FaultPlan.flaky_read(times=2))
        fired = 0
        for read in range(10):
            try:
                inj.apply_read_faults("d", 0)
            except InjectedFault:
                fired += 1
        assert fired == 2

    def test_attempt_scoping(self):
        """attempt=0 specs fire only during attempt 0."""
        inj = FaultInjector(FaultPlan.crash_worker(rank=1, after_reads=3))
        inj.attempt = 1
        assert not inj.should_crash(1, 3)
        inj.attempt = 0
        assert inj.should_crash(1, 3)
        # one-shot: consumed
        assert not inj.should_crash(1, 3)

    def test_should_crash_matching(self):
        inj = FaultInjector(FaultPlan.crash_worker(rank=2, after_reads=1))
        assert not inj.should_crash(1, 1)  # wrong rank
        assert not inj.should_crash(2, 0)  # wrong read count
        assert inj.should_crash(2, 1)

    def test_should_drop_matching(self):
        inj = FaultInjector(
            FaultPlan.drop_messages(message_kind="seg", message_index=5)
        )
        assert not inj.should_drop("ghost", 5)
        assert not inj.should_drop("seg", 4)
        assert inj.should_drop("seg", 5)
        assert not inj.should_drop("seg", 5)  # times=1 consumed

    def test_fired_log(self):
        inj = FaultInjector(FaultPlan.corrupt_chunk(3))
        inj.read_faults("d", 3)
        assert len(inj.fired) == 1 and inj.fired[0].kind == "corrupt"


class TestSlowRead:
    def test_slow_read_sleeps_injected_clock(self):
        slept = []
        inj = FaultInjector(
            FaultPlan.slow_read(0.25, chunk_id=1), sleep=slept.append
        )
        inj.apply_read_faults("d", 0)
        assert slept == []
        inj.apply_read_faults("d", 1)
        assert slept == [0.25]


class TestFaultyChunkStore:
    def test_io_error(self, rng):
        store = FaultyChunkStore(
            make_store(rng), FaultInjector(FaultPlan.flaky_read(chunk_id=1))
        )
        store.read_chunk("d", 0)  # other chunks unaffected
        with pytest.raises(InjectedFault):
            store.read_chunk("d", 1)

    def test_corruption_is_physical(self, rng):
        """Injected corruption trips the real CRC path."""
        store = FaultyChunkStore(
            make_store(rng), FaultInjector(FaultPlan.corrupt_chunk(2))
        )
        with pytest.raises(CorruptChunkError, match="CRC"):
            store.read_chunk("d", 2)

    def test_corruption_persists_by_default(self, rng):
        store = FaultyChunkStore(
            make_store(rng), FaultInjector(FaultPlan.corrupt_chunk(2))
        )
        for _ in range(3):
            with pytest.raises(CorruptChunkError):
                store.read_chunk("d", 2)

    def test_flaky_read_heals(self, rng):
        store = FaultyChunkStore(
            make_store(rng), FaultInjector(FaultPlan.flaky_read(chunk_id=0, times=2))
        )
        for _ in range(2):
            with pytest.raises(InjectedFault):
                store.read_chunk("d", 0)
        assert store.read_chunk("d", 0).chunk_id == 0

    def test_read_many_faults_at_position(self, rng):
        store = FaultyChunkStore(
            make_store(rng), FaultInjector(FaultPlan.corrupt_chunk(1))
        )
        it = store.read_many("d", [0, 1, 2])
        assert next(it).chunk_id == 0
        with pytest.raises(CorruptChunkError):
            next(it)

    def test_writes_pass_through(self, rng):
        inner = make_store(rng)
        store = FaultyChunkStore(inner, FaultInjector(FaultPlan()))
        coords = rng.uniform(0, 10, size=(3, 2))
        store.write_chunk("d", Chunk.from_items(9, coords, np.ones((3, 1))), 0, 0)
        assert 9 in inner.chunk_ids("d")

    def test_composes_with_retry(self, rng):
        """The documented composition: retry over a faulty store."""
        from repro.store.retry import RetryPolicy, RetryingChunkStore

        faulty = FaultyChunkStore(
            make_store(rng), FaultInjector(FaultPlan.flaky_read(times=2))
        )
        store = RetryingChunkStore(
            faulty, RetryPolicy(max_attempts=4, base_delay=0)
        )
        assert store.read_chunk("d", 0).chunk_id == 0
