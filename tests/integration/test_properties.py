"""Cross-component property tests (hypothesis).

Each property stitches several subsystems together on randomly
generated workloads -- the kind of invariant a single-module unit test
cannot check.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.batch import plan_batch
from repro.planner.costmodel import CostModel
from repro.planner.stats import plan_stats
from repro.planner.strategies import plan_query
from repro.planner.validate import validate_plan
from repro.sim.query_sim import simulate_query

from helpers import make_problem, sub_problem

COSTS = ComputeCosts.from_ms(1, 3, 1, 1)


@given(
    seed=st.integers(0, 2**31),
    strategy=st.sampled_from(["FRA", "SRA", "DA", "HYBRID"]),
)
@settings(max_examples=20, deadline=None)
def test_sim_agrees_with_plan_stats(seed, strategy):
    """Whatever the plan says moves is exactly what the simulator
    moves: bytes read, sent and received per processor."""
    rng = np.random.default_rng(seed)
    n_procs = int(rng.integers(2, 6))
    prob = make_problem(
        rng, n_procs=n_procs,
        n_in=int(rng.integers(10, 80)),
        n_out=int(rng.integers(2, 15)),
        memory=int(rng.integers(100_000, 1_000_000)),
    )
    plan = plan_query(prob, strategy)
    validate_plan(plan)
    machine = MachineConfig(n_procs=n_procs, memory_per_proc=1 << 20)
    res = simulate_query(plan, machine, COSTS)
    stats = plan_stats(plan)
    assert res.read_bytes.tolist() == stats.read_bytes.tolist()
    assert res.sent_bytes.tolist() == stats.sent_bytes.tolist()
    assert res.recv_bytes.tolist() == stats.recv_bytes.tolist()
    # total CPU busy equals the deterministic work total
    expected_cpu = (
        COSTS.init * stats.init_chunks.sum()
        + COSTS.reduction * stats.reduction_pairs.sum()
        + COSTS.combine * stats.combine_ops.sum()
        + COSTS.output * stats.output_chunks.sum()
    )
    assert res.cpu_busy.sum() == pytest.approx(expected_cpu)


@given(seed=st.integers(0, 2**31), strategy=st.sampled_from(["FRA", "DA"]))
@settings(max_examples=15, deadline=None)
def test_simulation_is_deterministic(seed, strategy):
    rng = np.random.default_rng(seed)
    prob = make_problem(rng, n_procs=3)
    plan = plan_query(prob, strategy)
    machine = MachineConfig(n_procs=3, memory_per_proc=1 << 20)
    a = simulate_query(plan, machine, COSTS, seed=1)
    b = simulate_query(plan, machine, COSTS, seed=1)
    assert a.total_time == b.total_time
    assert a.phase_times == b.phase_times


@given(seed=st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_costmodels_bounded_by_serial_work(seed):
    """Both cost models lie between the perfectly-parallel bound and
    the fully-serial bound of the plan's total work."""
    rng = np.random.default_rng(seed)
    n_procs = int(rng.integers(1, 5))
    prob = make_problem(rng, n_procs=n_procs)
    plan = plan_query(prob, "FRA")
    machine = MachineConfig(n_procs=n_procs, memory_per_proc=1 << 20)
    stats = plan_stats(plan)
    serial_cpu = (
        COSTS.init * stats.init_chunks.sum()
        + COSTS.reduction * stats.reduction_pairs.sum()
        + COSTS.combine * stats.combine_ops.sum()
        + COSTS.output * stats.output_chunks.sum()
    )
    serial_io = (
        stats.read_count.sum() * machine.disk_seek
        + (stats.read_bytes.sum() + stats.write_bytes.sum()) / machine.disk_bandwidth
        + stats.output_chunks.sum() * machine.disk_seek
    )
    comm = 2 * stats.sent_bytes.sum() / machine.link_bandwidth
    upper = serial_cpu + serial_io + comm + 1e-9
    lower = max(serial_cpu, serial_io) / n_procs - 1e-9
    for per_tile in (False, True):
        est = CostModel(machine, COSTS, per_tile=per_tile).estimate(plan).total
        assert lower <= est <= upper, (per_tile, lower, est, upper)


@given(seed=st.integers(0, 2**31), k=st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_batch_order_always_valid(seed, k):
    rng = np.random.default_rng(seed)
    problems = []
    for _ in range(k):
        lo = int(rng.integers(0, 50))
        hi = lo + int(rng.integers(5, 40))
        problems.append(sub_problem(rng, range(lo, hi)))
    batch = plan_batch(problems)
    assert sorted(batch.order) == list(range(k))
    assert batch.consecutive_shared_bytes() <= batch.total_read_bytes()

