"""Tests for the experiment grid and its CLI."""

import pytest

from repro.experiments import ExperimentGrid
from repro.experiments.__main__ import build_parser, main


@pytest.fixture(scope="module")
def grid():
    return ExperimentGrid(fidelity="fast", seed=5)


class TestExperimentGrid:
    def test_fidelity_validation(self):
        with pytest.raises(ValueError):
            ExperimentGrid(fidelity="medium")

    def test_fast_grid_shape(self, grid):
        assert grid.procs == (8, 16, 32)
        assert grid.fast

    def test_cell_caching(self, grid):
        a = grid.cell("VM", "fixed", 8, "DA")
        b = grid.cell("VM", "fixed", 8, "DA")
        assert a is b  # memoized

    def test_scale_for(self, grid):
        assert grid.scale_for("fixed", 32) == 1
        assert grid.scale_for("scaled", 32) == 4
        with pytest.raises(ValueError):
            grid.scale_for("diagonal", 8)

    def test_series_keys_and_lengths(self, grid):
        data = grid.series("VM", "fixed", lambda r: r.total_time)
        assert set(data) == {"FRA", "DA", "SRA"}
        assert all(len(v) == len(grid.procs) for v in data.values())

    def test_table_rendering(self, grid):
        text = grid.table("Figure 8", "VM", "fixed", "time")
        assert "Figure 8" in text and "procs" in text and "seconds" in text
        assert text.count("\n") >= 3 + len(grid.procs) - 1

    def test_table1_rendering(self, grid):
        text = grid.table1("WCS")
        assert "WCS" in text and "1-20-1-1" in text


class TestCLI:
    def test_parser_choices(self):
        parser = build_parser()
        args = parser.parse_args(["fig8", "--app", "VM", "--fidelity", "fast"])
        assert args.what == "fig8" and args.app == "VM"
        with pytest.raises(SystemExit):
            parser.parse_args(["fig7"])

    def test_table1_command(self, capsys):
        assert main(["table1", "--app", "VM", "--fidelity", "fast"]) == 0
        out = capsys.readouterr().out
        assert "Table 1 -- VM" in out

    def test_fig8_command(self, capsys):
        assert main(
            ["fig8", "--app", "VM", "--scaling", "fixed", "--fidelity", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 8 (left)" in out and "VM" in out

    def test_fig9_single_metric(self, capsys):
        assert main(
            ["fig9", "--app", "VM", "--scaling", "fixed", "--metric", "comm",
             "--fidelity", "fast"]
        ) == 0
        out = capsys.readouterr().out
        assert "Figure 9(a)" in out
        assert "9(c)" not in out


class TestPhaseBreakdown:
    def test_phase_table(self, grid):
        text = grid.phase_table("VM", "fixed", 8)
        assert "Phase breakdown" in text
        assert "FRA" in text and "DA" in text
        # DA has no combine phase
        da_row = next(l for l in text.splitlines() if l.strip().startswith("DA"))
        assert "0.00" in da_row

    def test_phases_cli(self, capsys):
        assert main(["phases", "--app", "VM", "--scaling", "fixed",
                     "--fidelity", "fast", "--procs", "16"]) == 0
        out = capsys.readouterr().out
        assert "16 processors" in out

    def test_phase_totals_match_cells(self, grid):
        r = grid.cell("VM", "fixed", 8, "FRA")
        assert sum(r.phase_times.values()) == pytest.approx(r.total_time, rel=0.02)
