"""End-to-end value-synopsis pruning: ``where=`` through the whole stack.

The contract under test: a query with a value predicate returns
*bit-identical* results whether or not the planner pruned chunks, on
every backend combination, while the pruned plan reads strictly less
and reports what it skipped (``chunks_pruned`` / ``bytes_pruned``)
consistently everywhere -- functional results, the wire protocol, and
the performance simulator.
"""

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.machine.config import MachineConfig
from repro.runtime.serial import execute_serial
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import MB

WHERE = {0: (None, 30.0)}


def build_instance(rng, n_procs=3):
    adr = ADR(machine=MachineConfig(n_procs=n_procs, memory_per_proc=1 * MB))
    in_space = AttributeSpace.regular("readings", ("x", "y"), (0, 0), (10, 10))
    out_space = AttributeSpace.regular("image", ("u", "v"), (0, 0), (1, 1))
    coords = rng.uniform(0, 10, size=(400, 2))
    # Values track x, so Hilbert-partitioned (spatially local) chunks
    # carry narrow synopses and the WHERE clause prunes a real subset.
    values = coords[:, 0] * 10.0 + rng.uniform(0.0, 5.0, size=400)
    chunks = hilbert_partition(coords, values, items_per_chunk=25)
    adr.load("sensors", in_space, chunks)
    grid = OutputGrid(out_space, (12, 12), (4, 4))
    mapping = GridMapping(in_space, out_space, (12, 12))
    return adr, chunks, mapping, grid


def query(mapping, grid, where=None, strategy="FRA", prefetch=None):
    return RangeQuery(
        dataset="sensors",
        region=Rect((0, 0), (10, 10)),
        mapping=mapping,
        grid=grid,
        aggregation="sum",
        strategy=strategy,
        where=where,
        prefetch=prefetch,
    )


class TestPlannerPruning:
    def test_problem_drops_prunable_chunks(self, rng):
        adr, chunks, mapping, grid = build_instance(rng)
        full = adr.build_problem(query(mapping, grid))
        pruned = adr.build_problem(query(mapping, grid, where=WHERE))
        assert 0 < pruned.n_pruned < len(chunks)
        assert pruned.n_in == full.n_in - pruned.n_pruned
        assert pruned.pruned_bytes > 0
        # Pruned + kept = the spatial selection; no chunk in both.
        kept = set(pruned.input_global_ids.tolist())
        dropped = set(pruned.pruned_input_ids.tolist())
        assert not kept & dropped
        assert kept | dropped == set(full.input_global_ids.tolist())

    def test_no_predicate_no_pruning(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        problem = adr.build_problem(query(mapping, grid))
        assert problem.n_pruned == 0
        assert problem.pruned_bytes == 0

    def test_all_pruned_raises(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        with pytest.raises(ValueError, match="pruning"):
            adr.build_problem(query(mapping, grid, where={0: (1e6, None)}))


@pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA", "HYBRID"])
class TestPrunedResultIdentity:
    def test_pruned_equals_unpruned_all_backends(self, rng, strategy):
        adr, chunks, mapping, grid = build_instance(rng)
        pruned = {
            "sequential": adr.execute(query(mapping, grid, WHERE, strategy)),
            "parallel": adr.execute(
                query(mapping, grid, WHERE, strategy), backend="parallel"
            ),
            "sequential+prefetch": adr.execute(
                query(mapping, grid, WHERE, strategy, prefetch=True)
            ),
            "parallel+prefetch": adr.execute(
                query(mapping, grid, WHERE, strategy, prefetch=True),
                backend="parallel",
            ),
        }
        # Strip the synopsis: same predicate, but nothing can be pruned.
        ds = adr.dataset("sensors")
        ds.chunks = ds.chunks.with_synopsis(None)
        unpruned = adr.execute(query(mapping, grid, WHERE, strategy))
        assert unpruned.chunks_pruned == 0

        n_pruned = pruned["sequential"].chunks_pruned
        assert 0 < n_pruned < len(chunks)
        for name, res in pruned.items():
            assert res.output_ids.tolist() == unpruned.output_ids.tolist(), name
            for o, pv, uv in zip(
                res.output_ids, res.chunk_values, unpruned.chunk_values
            ):
                assert np.array_equal(pv, uv, equal_nan=True), (name, int(o))
            assert res.chunks_pruned == n_pruned, name
            assert res.bytes_pruned == pruned["sequential"].bytes_pruned > 0, name
            assert res.n_reads < unpruned.n_reads, name
            assert res.bytes_read < unpruned.bytes_read, name

    def test_matches_predicate_oracle(self, rng, strategy):
        adr, chunks, mapping, grid = build_instance(rng)
        result = adr.execute(query(mapping, grid, WHERE, strategy))
        q = query(mapping, grid, WHERE)
        serial = execute_serial(
            chunks, mapping, grid, q.spec(), predicate=q.predicate()
        )
        assert set(result.output_ids.tolist()) == set(serial)
        for o, vals in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(vals, serial[int(o)], equal_nan=True)


class TestPredicateSemantics:
    def test_where_changes_results(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        plain = adr.execute(query(mapping, grid)).as_dict()
        filtered = adr.execute(query(mapping, grid, where=WHERE)).as_dict()
        assert any(
            not np.allclose(filtered[o], plain[o], equal_nan=True)
            for o in filtered
        )

    def test_where_without_synopsis_still_filters(self, rng):
        """Residual filtering alone (no synopsis, no pruning) gives the
        same answer -- pruning is purely an I/O optimization."""
        adr, chunks, mapping, grid = build_instance(rng)
        with_syn = adr.execute(query(mapping, grid, where=WHERE))
        ds = adr.dataset("sensors")
        ds.chunks = ds.chunks.with_synopsis(None)
        without = adr.execute(query(mapping, grid, where=WHERE))
        for a, b in zip(with_syn.chunk_values, without.chunk_values):
            assert np.array_equal(a, b, equal_nan=True)


class TestSimulatorPricing:
    def test_sim_prices_pruned_schedule(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        plain = adr.simulate(query(mapping, grid, strategy="FRA"))
        pruned = adr.simulate(query(mapping, grid, where=WHERE, strategy="FRA"))
        assert plain.chunks_pruned == 0
        assert pruned.chunks_pruned > 0
        assert pruned.bytes_pruned > 0
        # The simulated schedule excludes pruned chunks entirely.
        assert pruned.read_bytes.sum() < plain.read_bytes.sum()
        assert pruned.total_time < plain.total_time


class TestProtocol:
    def test_where_round_trips(self, rng):
        from repro.frontend.protocol import query_from_dict, query_to_dict

        _, _, mapping, grid = build_instance(rng)
        q = query(mapping, grid, where=WHERE)
        payload = query_to_dict(q)
        assert "where" in payload
        back = query_from_dict(payload)
        assert back.predicate() == q.predicate()

    def test_default_query_has_no_where_key(self, rng):
        from repro.frontend.protocol import query_to_dict

        _, _, mapping, grid = build_instance(rng)
        assert "where" not in query_to_dict(query(mapping, grid))

    def test_result_counters_round_trip(self, rng):
        from repro.frontend.protocol import result_from_dict, result_to_dict

        adr, _, mapping, grid = build_instance(rng)
        res = adr.execute(query(mapping, grid, where=WHERE))
        payload = result_to_dict(res)
        assert payload["chunks_pruned"] == res.chunks_pruned > 0
        back = result_from_dict(payload)
        assert back.chunks_pruned == res.chunks_pruned
        assert back.bytes_pruned == res.bytes_pruned
        # Unpruned results keep the legacy payload shape.
        plain = result_to_dict(adr.execute(query(mapping, grid)))
        assert "chunks_pruned" not in plain
