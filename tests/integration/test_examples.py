"""Smoke tests: every shipped example must run to completion.

Examples are the public face of the API; a refactor that silently
breaks one would otherwise only be caught by a human.  Each runs in a
subprocess with the repository's interpreter.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{name} produced no output"


class TestExampleContent:
    """Each example must demonstrate what its docstring promises."""

    def run(self, name):
        return subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / name)],
            capture_output=True, text=True, timeout=300,
        ).stdout

    def test_quickstart_shows_plan_and_grid(self):
        out = self.run("quickstart.py")
        assert "planner chose" in out
        assert "simulated execution" in out

    def test_satellite_proves_strategy_equality(self):
        out = self.run("satellite_composite.py")
        assert "identical composites" in out

    def test_walkthrough_shows_both_strategies(self):
        out = self.run("strategy_walkthrough.py")
        assert "--- FRA ---" in out and "--- DA ---" in out
        assert "timeline:" in out

    def test_service_demo_round_trips(self):
        out = self.run("adr_service_demo.py")
        assert "ping: ok" in out
        assert "expected rejection" in out

    def test_water_contamination_conserves_mass(self):
        out = self.run("water_contamination.py")
        masses = [
            float(line.split("total mass")[1].split(",")[0])
            for line in out.splitlines()
            if "total mass" in line
        ]
        assert masses and all(m <= masses[0] + 1e-6 for m in masses)
