"""Integration tests: the paper's qualitative results at reduced scale.

Each test pins one claim from Section 4 of the paper, using smaller
chunk populations than the full benches so the suite stays fast.
"""

import numpy as np
import pytest

from repro.emulator import SATEmulator, VMEmulator, WCSEmulator
from repro.machine.presets import IBM_SP_COSTS, ibm_sp
from repro.planner.stats import plan_stats
from repro.planner.strategies import plan_query
from repro.sim.query_sim import simulate_query
from repro.util.units import MB

SMALL_SAT = SATEmulator(base_chunks=1500)
SMALL_WCS = WCSEmulator(steps_per_scale=2)  # 1500 chunks per scale
SMALL_VM = VMEmulator(input_grid=(32, 32))  # 1024 chunks per scale


def run(emu, scale, n_procs, strategy, memory=32 * MB, **kw):
    sc = emu.scenario(scale, seed=11)
    m = ibm_sp(n_procs, memory_per_proc=memory, **kw)
    plan = plan_query(sc.problem(m), strategy)
    return plan, simulate_query(plan, m, sc.costs)


class TestFixedInputScaling:
    """Fig 8 left column: execution time decreases with P; FRA/SRA
    beat DA at small P for SAT."""

    def test_time_decreases_with_procs(self):
        for strategy in ("FRA", "DA"):
            times = [run(SMALL_SAT, 1, p, strategy)[1].total_time for p in (4, 8, 16)]
            assert times[0] > times[1] > times[2]

    def test_fra_beats_da_at_small_p_for_sat(self):
        # full-size population: the claim depends on realistic fan-in
        _, fra = run(SATEmulator(), 1, 8, "FRA")
        _, da = run(SATEmulator(), 1, 8, "DA")
        assert fra.total_time < da.total_time


class TestScaledInputScaling:
    """Fig 8 right column: FRA stays ~flat, DA grows."""

    def test_fra_flat_da_grows_sat(self):
        fra = [run(SMALL_SAT, s, 8 * s, "FRA")[1].total_time for s in (1, 4)]
        da = [run(SMALL_SAT, s, 8 * s, "DA")[1].total_time for s in (1, 4)]
        assert fra[1] < 1.35 * fra[0]  # almost constant
        assert da[1] > 1.25 * da[0]  # clearly growing

    def test_da_growth_driven_by_imbalance(self):
        """The paper attributes DA's scaled-input growth to load
        imbalance in local reduction; per-processor reduction work
        spread must widen with P."""
        small = plan_stats(run(SMALL_SAT, 1, 8, "DA")[0])
        large = plan_stats(run(SMALL_SAT, 4, 32, "DA")[0])
        assert large.load_imbalance > small.load_imbalance


class TestCommunicationVolume:
    """Fig 9 a/b: DA comm ∝ input chunks per proc x fan-out; FRA comm
    ~ constant ∝ accumulator size."""

    def test_da_comm_decreases_with_procs_fixed_input(self):
        vols = [
            run(SMALL_SAT, 1, p, "DA")[1].comm_volume_per_proc for p in (4, 8, 16)
        ]
        assert vols[0] > vols[1] > vols[2]

    def test_fra_comm_roughly_constant(self):
        vols = [
            run(SMALL_SAT, 1, p, "FRA")[1].comm_volume_per_proc for p in (4, 8, 16)
        ]
        assert max(vols) < 1.3 * min(vols)

    def test_da_comm_grows_with_scaled_input(self):
        a = run(SMALL_SAT, 1, 8, "DA")[1].comm_volume_per_proc
        b = run(SMALL_SAT, 4, 32, "DA")[1].comm_volume_per_proc
        assert b > a

    def test_sra_equals_fra_when_fan_in_large(self):
        """SAT fan-in >> P: every processor holds input for every
        output chunk, so SRA degenerates to FRA (Section 4)."""
        _, sra = run(SATEmulator(), 1, 8, "SRA")
        _, fra = run(SATEmulator(), 1, 8, "FRA")
        assert sra.comm_volume_per_proc == pytest.approx(
            fra.comm_volume_per_proc, rel=0.02
        )

    def test_sra_below_fra_when_p_exceeds_fan_in(self):
        """VM fan-in 16: with 32 processors SRA allocates far fewer
        ghosts than FRA (the Section 4 observation for VM at P>=32)."""
        _, sra = run(SMALL_VM, 1, 32, "SRA")
        _, fra = run(SMALL_VM, 1, 32, "FRA")
        assert sra.comm_volume_per_proc < 0.8 * fra.comm_volume_per_proc


class TestComputationTime:
    """Fig 9 c/d: computation does not scale perfectly -- constant
    init/combine overheads for FRA, load imbalance for DA."""

    def test_fra_imperfect_scaling(self):
        a = run(SMALL_SAT, 1, 4, "FRA")[1].computation_time
        b = run(SMALL_SAT, 1, 16, "FRA")[1].computation_time
        assert b > a / 4  # worse than ideal 4x speedup

    def test_fra_combine_overhead_constantish(self):
        a = run(SMALL_SAT, 1, 4, "FRA")[1].phase_times["combine"]
        b = run(SMALL_SAT, 1, 16, "FRA")[1].phase_times["combine"]
        assert b > 0.4 * a  # does not shrink like 1/P

    def test_da_no_combine_phase(self):
        res = run(SMALL_SAT, 1, 8, "DA")[1]
        assert res.phase_times["combine"] == 0.0


class TestWCS:
    def test_fra_beats_da_small_p(self):
        _, fra = run(WCSEmulator(), 1, 8, "FRA")
        _, da = run(WCSEmulator(), 1, 8, "DA")
        assert fra.total_time < da.total_time

    def test_scaled_fra_flat(self):
        t = [run(SMALL_WCS, s, 8 * s, "FRA")[1].total_time for s in (1, 4)]
        assert t[1] < 1.4 * t[0]


class TestVM:
    def test_da_competitive_for_vm(self):
        """Low fan-out, cheap compute: DA should win or tie (what the
        paper expected before its I/O anomaly)."""
        _, da = run(SMALL_VM, 1, 8, "DA")
        _, fra = run(SMALL_VM, 1, 8, "FRA")
        assert da.total_time <= 1.1 * fra.total_time

    def test_io_jitter_reproduces_vm_fluctuation(self):
        """With AIX-style I/O jitter, large configurations slow down
        and fluctuate -- the paper's explanation for VM's anomaly."""
        base = run(SMALL_VM, 2, 16, "DA")[1].total_time
        jittered = [
            simulate_query(
                plan_query(
                    SMALL_VM.scenario(2, seed=11).problem(
                        ibm_sp(16, io_jitter=1.2)
                    ),
                    "DA",
                ),
                ibm_sp(16, io_jitter=1.2),
                IBM_SP_COSTS["VM"],
                seed=s,
            ).total_time
            for s in range(3)
        ]
        assert min(jittered) > base
        assert max(jittered) > min(jittered)
