"""Tests for multiple disks per node (the paper's general back end).

The SP testbed had one disk per node, but ADR's architecture is
"distributed memory parallel architectures with multiple disks
attached to each node"; these tests exercise that generality through
placement, planning, simulation and the functional store.
"""

import dataclasses

import numpy as np
import pytest

from repro.decluster.hilbert import HilbertDeclusterer
from repro.emulator import VMEmulator
from repro.machine.config import ComputeCosts, MachineConfig
from repro.machine.presets import ibm_sp
from repro.planner.strategies import plan_fra
from repro.sim.query_sim import simulate_query
from repro.util.units import MB


@pytest.fixture(scope="module")
def scenario():
    return VMEmulator(input_grid=(32, 32)).scenario(1, seed=3)


def machine(disks: int) -> MachineConfig:
    base = ibm_sp(4)
    return dataclasses.replace(base, disks_per_node=disks)


class TestPlacement:
    def test_chunks_spread_over_local_disks(self, scenario):
        decl = HilbertDeclusterer()
        placed = decl.place(scenario.inputs, n_nodes=4, disks_per_node=3)
        for node in range(4):
            on_node = placed.disk[placed.node == node]
            counts = np.bincount(on_node, minlength=3)
            assert counts.min() > 0
            assert counts.max() - counts.min() <= counts.mean()

    def test_disk_indices_bounded(self, scenario):
        placed = HilbertDeclusterer().place(scenario.inputs, 4, 3)
        assert placed.disk.max() < 3


class TestSimulation:
    def test_more_disks_speed_up_io_bound_query(self, scenario):
        times = {}
        for disks in (1, 2, 4):
            m = machine(disks)
            prob = scenario.problem(m)
            plan = plan_fra(prob)
            times[disks] = simulate_query(plan, m, scenario.costs).total_time
        assert times[2] < times[1]
        assert times[4] < times[2]

    def test_disk_busy_aggregates_all_local_disks(self, scenario):
        m = machine(4)
        prob = scenario.problem(m)
        res = simulate_query(plan_fra(prob), m, scenario.costs)
        # total disk service time is independent of the disk count
        m1 = machine(1)
        res1 = simulate_query(plan_fra(scenario.problem(m1)), m1, scenario.costs)
        assert res.disk_busy.sum() == pytest.approx(res1.disk_busy.sum(), rel=0.01)

    def test_mismatched_disk_placement_rejected(self, scenario):
        # chunks placed for 4 disks per node, machine with 1: the read
        # path would index a missing disk
        m4 = machine(4)
        prob = scenario.problem(m4)
        m1 = machine(1)
        with pytest.raises(IndexError):
            simulate_query(plan_fra(prob), m1, scenario.costs)


class TestFunctionalStore:
    def test_file_store_multi_disk_layout(self, rng, tmp_path):
        from repro.dataset.partition import hilbert_partition
        from repro.frontend.adr import ADR
        from repro.store.chunk_store import FileChunkStore
        from repro.space.attribute_space import AttributeSpace

        m = MachineConfig(n_procs=2, memory_per_proc=MB, disks_per_node=3)
        adr = ADR(machine=m, store=FileChunkStore(tmp_path / "farm"))
        space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (1, 1))
        coords = rng.uniform(0, 1, size=(120, 2))
        chunks = hilbert_partition(coords, np.zeros(120), items_per_chunk=10)
        adr.load("d", space, chunks)
        disks_used = {
            adr.store.placement("d", c)[1] for c in adr.store.chunk_ids("d")
        }
        assert disks_used == {0, 1, 2}
