"""Tests for the uniform-grid index and the brute-force baseline."""

import numpy as np
import pytest

from repro.index.brute import BruteForceIndex
from repro.index.grid import GridIndex
from repro.util.geometry import Rect

from helpers import random_rects


class TestGridIndex:
    def test_matches_brute_force(self, rng):
        los, his = random_rects(rng, 400, 2)
        grid = GridIndex(los, his)
        brute = BruteForceIndex(los, his)
        for _ in range(25):
            lo = rng.uniform(0, 80, size=2)
            q = Rect(tuple(lo), tuple(lo + rng.uniform(0, 30, size=2)))
            assert grid.query(q).tolist() == brute.query(q).tolist()

    def test_3d(self, rng):
        los, his = random_rects(rng, 150, 3)
        grid = GridIndex(los, his, cells_per_dim=4)
        brute = BruteForceIndex(los, his)
        q = Rect((10, 10, 10), (60, 60, 60))
        assert grid.query(q).tolist() == brute.query(q).tolist()

    def test_empty(self):
        g = GridIndex(np.empty((0, 2)), np.empty((0, 2)))
        assert g.query(Rect((0, 0), (1, 1))).tolist() == []

    def test_n_cells_positive(self, rng):
        los, his = random_rects(rng, 100, 2)
        g = GridIndex(los, his)
        assert g.n_cells >= 1
        assert g.n_entries == 100

    def test_bad_cells_per_dim(self, rng):
        los, his = random_rects(rng, 10, 2)
        with pytest.raises(ValueError):
            GridIndex(los, his, cells_per_dim=0)

    def test_query_dim_mismatch(self, rng):
        los, his = random_rects(rng, 10, 2)
        with pytest.raises(ValueError):
            GridIndex(los, his).query(Rect((0,), (1,)))


class TestBruteForce:
    def test_build_from_chunkset(self, rng):
        from repro.dataset.chunkset import ChunkSet

        los, his = random_rects(rng, 50, 2)
        cs = ChunkSet(los, his, np.full(50, 10, dtype=np.int64))
        idx = BruteForceIndex.build(cs)
        q = Rect((0, 0), (50, 50))
        assert idx.query(q).tolist() == cs.intersecting(q).tolist()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BruteForceIndex(np.zeros((2, 2)), np.zeros((3, 2)))
