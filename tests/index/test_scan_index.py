"""Tests for the vectorized sorted-MBR scan index."""

import numpy as np
import pytest

from repro.index.brute import BruteForceIndex
from repro.index.scan import ScanIndex
from repro.util.geometry import Rect

from helpers import random_rects


class TestScanIndex:
    def test_matches_brute_force(self, rng):
        los, his = random_rects(rng, 500, 2)
        scan = ScanIndex(los, his)
        brute = BruteForceIndex(los, his)
        for _ in range(40):
            lo = rng.uniform(0, 90, size=2)
            q = Rect(tuple(lo), tuple(lo + rng.uniform(0, 40, size=2)))
            assert scan.query(q).tolist() == brute.query(q).tolist()

    @pytest.mark.parametrize("ndim", [1, 3, 4])
    def test_matches_brute_force_other_dims(self, rng, ndim):
        los, his = random_rects(rng, 200, ndim)
        scan = ScanIndex(los, his)
        brute = BruteForceIndex(los, his)
        for _ in range(15):
            lo = rng.uniform(0, 80, size=ndim)
            q = Rect(tuple(lo), tuple(lo + rng.uniform(0, 30, size=ndim)))
            assert scan.query(q).tolist() == brute.query(q).tolist()

    def test_results_sorted(self, rng):
        los, his = random_rects(rng, 300, 2)
        ids = ScanIndex(los, his).query(Rect((0, 0), (100, 100)))
        assert ids.dtype == np.int64
        assert np.all(np.diff(ids) > 0)
        assert len(ids) == 300

    def test_empty_population(self):
        scan = ScanIndex(np.empty((0, 2)), np.empty((0, 2)))
        assert scan.n_entries == 0
        assert scan.query(Rect((0, 0), (1, 1))).tolist() == []

    def test_disjoint_query(self, rng):
        los, his = random_rects(rng, 100, 2)
        scan = ScanIndex(los, his)
        assert scan.query(Rect((500, 500), (600, 600))).tolist() == []

    def test_zero_width_rects(self):
        # Point MBRs: boundary-touching queries must still hit them.
        los = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        scan = ScanIndex(los, los.copy())
        assert scan.query(Rect((2.0, 2.0), (2.0, 2.0))).tolist() == [1]
        assert scan.query(Rect((0.0, 0.0), (2.0, 2.0))).tolist() == [0, 1]

    def test_boundary_touching(self):
        los = np.array([[0.0, 0.0], [5.0, 0.0]])
        his = np.array([[5.0, 5.0], [9.0, 5.0]])
        scan = ScanIndex(los, his)
        # Query sharing only an edge with each rect intersects both.
        assert scan.query(Rect((5.0, 0.0), (5.0, 5.0))).tolist() == [0, 1]

    def test_build_from_chunkset(self, rng):
        from repro.dataset.chunkset import ChunkSet

        los, his = random_rects(rng, 60, 2)
        cs = ChunkSet(los, his, np.full(60, 10, dtype=np.int64))
        idx = ScanIndex.build(cs)
        q = Rect((10, 10), (70, 70))
        assert idx.query(q).tolist() == cs.intersecting(q).tolist()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ScanIndex(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            ScanIndex(np.ones((2, 2)), np.zeros((2, 2)))  # lo > hi

    def test_query_dim_mismatch(self, rng):
        los, his = random_rects(rng, 10, 2)
        with pytest.raises(ValueError):
            ScanIndex(los, his).query(Rect((0,), (1,)))
