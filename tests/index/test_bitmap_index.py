"""Tests for the hierarchical bitmap index over chunk MBRs."""

import numpy as np
import pytest

from repro.index.bitmap import HierarchicalBitmapIndex
from repro.index.brute import BruteForceIndex
from repro.util.geometry import Rect

from helpers import random_rects


class TestBitmapIndex:
    def test_matches_brute_force(self, rng):
        los, his = random_rects(rng, 500, 2)
        bmp = HierarchicalBitmapIndex(los, his)
        brute = BruteForceIndex(los, his)
        for _ in range(40):
            lo = rng.uniform(0, 90, size=2)
            q = Rect(tuple(lo), tuple(lo + rng.uniform(0, 40, size=2)))
            assert bmp.query(q).tolist() == brute.query(q).tolist()

    @pytest.mark.parametrize("ndim", [1, 3])
    def test_matches_brute_force_other_dims(self, rng, ndim):
        los, his = random_rects(rng, 200, ndim)
        bmp = HierarchicalBitmapIndex(los, his)
        brute = BruteForceIndex(los, his)
        for _ in range(15):
            lo = rng.uniform(0, 80, size=ndim)
            q = Rect(tuple(lo), tuple(lo + rng.uniform(0, 30, size=ndim)))
            assert bmp.query(q).tolist() == brute.query(q).tolist()

    @pytest.mark.parametrize("n_bins", [1, 3, 64, 200])
    def test_bin_counts(self, rng, n_bins):
        # Any bin budget (rounded up to a power of two) stays exact.
        los, his = random_rects(rng, 150, 2)
        bmp = HierarchicalBitmapIndex(los, his, n_bins=n_bins)
        brute = BruteForceIndex(los, his)
        for _ in range(10):
            lo = rng.uniform(0, 80, size=2)
            q = Rect(tuple(lo), tuple(lo + rng.uniform(0, 30, size=2)))
            assert bmp.query(q).tolist() == brute.query(q).tolist()

    def test_empty_population(self):
        bmp = HierarchicalBitmapIndex(np.empty((0, 2)), np.empty((0, 2)))
        assert bmp.n_entries == 0
        assert bmp.query(Rect((0, 0), (1, 1))).tolist() == []

    def test_query_outside_domain(self, rng):
        los, his = random_rects(rng, 50, 2)
        bmp = HierarchicalBitmapIndex(los, his)
        assert bmp.query(Rect((1e6, 1e6), (2e6, 2e6))).tolist() == []

    def test_query_clipped_to_domain(self, rng):
        # A query overhanging the domain matches everything inside it.
        los, his = random_rects(rng, 80, 2)
        bmp = HierarchicalBitmapIndex(los, his)
        brute = BruteForceIndex(los, his)
        q = Rect((-1e5, -1e5), (1e5, 1e5))
        assert bmp.query(q).tolist() == brute.query(q).tolist()

    def test_degenerate_domain(self):
        # All rects at the same point: zero-width domain, scale 0.
        los = np.full((5, 2), 3.0)
        bmp = HierarchicalBitmapIndex(los, los.copy())
        assert bmp.query(Rect((3.0, 3.0), (3.0, 3.0))).tolist() == [0, 1, 2, 3, 4]
        assert bmp.query(Rect((4.0, 4.0), (5.0, 5.0))).tolist() == []

    def test_zero_width_rects(self):
        los = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        bmp = HierarchicalBitmapIndex(los, los.copy())
        assert bmp.query(Rect((2.0, 2.0), (2.0, 2.0))).tolist() == [1]

    def test_boundary_touching(self):
        los = np.array([[0.0, 0.0], [5.0, 0.0]])
        his = np.array([[5.0, 5.0], [9.0, 5.0]])
        bmp = HierarchicalBitmapIndex(los, his)
        assert bmp.query(Rect((5.0, 0.0), (5.0, 5.0))).tolist() == [0, 1]

    def test_results_sorted_int64(self, rng):
        los, his = random_rects(rng, 300, 2)
        ids = HierarchicalBitmapIndex(los, his).query(Rect((0, 0), (100, 100)))
        assert ids.dtype == np.int64
        assert np.all(np.diff(ids) > 0)

    def test_more_rects_than_one_word(self, rng):
        # Force multiple uint64 words per bin row.
        los, his = random_rects(rng, 700, 2)
        bmp = HierarchicalBitmapIndex(los, his, n_bins=16)
        brute = BruteForceIndex(los, his)
        for _ in range(10):
            lo = rng.uniform(0, 90, size=2)
            q = Rect(tuple(lo), tuple(lo + rng.uniform(0, 25, size=2)))
            assert bmp.query(q).tolist() == brute.query(q).tolist()

    def test_build_from_chunkset(self, rng):
        from repro.dataset.chunkset import ChunkSet

        los, his = random_rects(rng, 60, 2)
        cs = ChunkSet(los, his, np.full(60, 10, dtype=np.int64))
        idx = HierarchicalBitmapIndex.build(cs)
        q = Rect((10, 10), (70, 70))
        assert idx.query(q).tolist() == cs.intersecting(q).tolist()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            HierarchicalBitmapIndex(np.zeros((2, 2)), np.zeros((3, 2)))
        with pytest.raises(ValueError):
            HierarchicalBitmapIndex(np.ones((2, 2)), np.zeros((2, 2)))

    def test_bad_n_bins(self, rng):
        los, his = random_rects(rng, 10, 2)
        with pytest.raises(ValueError):
            HierarchicalBitmapIndex(los, his, n_bins=0)

    def test_query_dim_mismatch(self, rng):
        los, his = random_rects(rng, 10, 2)
        with pytest.raises(ValueError):
            HierarchicalBitmapIndex(los, his).query(Rect((0,), (1,)))
