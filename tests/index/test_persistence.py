"""Pickle persistence round-trips for every SpatialIndex type.

The dataset loader persists one index per dataset; a reloaded index
must answer queries identically to the one that was saved -- including
over degenerate MBR populations (zero-width, boundary-touching,
single-chunk).
"""

import pickle

import numpy as np
import pytest

from repro.index import (
    BruteForceIndex,
    GridIndex,
    HierarchicalBitmapIndex,
    RTree,
    ScanIndex,
    SpatialIndex,
)
from repro.util.geometry import Rect

from helpers import random_rects

ALL_INDEX_TYPES = [
    BruteForceIndex,
    GridIndex,
    RTree,
    ScanIndex,
    HierarchicalBitmapIndex,
]


def degenerate_populations(rng):
    """(label, los, his) triples covering the nasty MBR shapes."""
    los, his = random_rects(rng, 120, 2)
    zero_width = los.copy()
    # Rectangles that touch exactly along shared edges at x = 0/5/10.
    touching_lo = np.array([[0.0, 0.0], [5.0, 0.0], [5.0, 5.0]])
    touching_hi = np.array([[5.0, 5.0], [10.0, 5.0], [10.0, 10.0]])
    return [
        ("random", los, his),
        ("zero-width", zero_width, zero_width.copy()),
        ("boundary-touching", touching_lo, touching_hi),
        ("single-chunk", np.array([[2.0, 3.0]]), np.array([[4.0, 9.0]])),
    ]


def probe_queries(rng, n=12):
    rects = [
        Rect((0.0, 0.0), (100.0, 100.0)),   # everything
        Rect((5.0, 5.0), (5.0, 5.0)),       # a point on shared edges
        Rect((-10.0, -10.0), (-5.0, -5.0)),  # nothing
    ]
    for _ in range(n):
        lo = rng.uniform(0, 90, size=2)
        rects.append(Rect(tuple(lo), tuple(lo + rng.uniform(0, 30, size=2))))
    return rects


@pytest.mark.parametrize("index_cls", ALL_INDEX_TYPES)
class TestPersistence:
    def test_save_load_query_equality(self, rng, tmp_path, index_cls):
        for label, los, his in degenerate_populations(rng):
            idx = index_cls.from_rects(los, his)
            path = tmp_path / f"{index_cls.__name__}-{label}.idx"
            idx.save(path)
            loaded = SpatialIndex.load(path)
            assert isinstance(loaded, index_cls)
            assert loaded.n_entries == idx.n_entries
            for q in probe_queries(rng):
                a, b = idx.query(q), loaded.query(q)
                assert a.tolist() == b.tolist(), (index_cls, label, q)

    def test_empty_population_round_trip(self, tmp_path, index_cls):
        idx = index_cls.from_rects(np.empty((0, 2)), np.empty((0, 2)))
        path = tmp_path / "empty.idx"
        idx.save(path)
        loaded = SpatialIndex.load(path)
        assert isinstance(loaded, index_cls)
        assert loaded.n_entries == 0
        assert loaded.query(Rect((0, 0), (1, 1))).tolist() == []


def test_load_rejects_non_index(tmp_path):
    path = tmp_path / "junk.idx"
    with open(path, "wb") as fh:
        pickle.dump({"not": "an index"}, fh)
    with pytest.raises(TypeError):
        SpatialIndex.load(path)
