"""Property tests (hypothesis) for the index layer and synopsis pruning.

Two invariants the whole pruning tentpole rests on:

- every :class:`~repro.index.base.SpatialIndex` implementation answers
  exactly like the brute-force oracle on arbitrary MBR populations and
  queries (including degenerate zero-width and boundary-touching
  rectangles);
- value-synopsis pruning is *conservative*: a chunk holding at least
  one predicate-satisfying item is never marked prunable.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.chunk import Chunk, ChunkMeta
from repro.dataset.predicate import ValuePredicate
from repro.dataset.synopsis import ValueSynopsis
from repro.index import (
    BruteForceIndex,
    GridIndex,
    HierarchicalBitmapIndex,
    RTree,
    ScanIndex,
)
from repro.util.geometry import Rect

INDEX_TYPES = [GridIndex, RTree, ScanIndex, HierarchicalBitmapIndex]


def _population(rng, n, ndim):
    los = rng.uniform(-50, 50, size=(n, ndim))
    sizes = rng.uniform(0, 20, size=(n, ndim))
    # A third of the rectangles are made degenerate (zero width on a
    # random axis) to keep boundary handling honest.
    flat = rng.random(n) < 0.33
    axis = rng.integers(0, ndim, size=n)
    sizes[np.arange(n)[flat], axis[flat]] = 0.0
    return los, los + sizes


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(0, 150),
    ndim=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_all_indexes_agree_with_brute_force(seed, n, ndim):
    rng = np.random.default_rng(seed)
    los, his = _population(rng, n, ndim)
    brute = BruteForceIndex(los, his)
    indexes = [cls.from_rects(los.copy(), his.copy()) for cls in INDEX_TYPES]
    for _ in range(8):
        qlo = rng.uniform(-70, 60, size=ndim)
        qhi = qlo + rng.uniform(0, 50, size=ndim)
        q = Rect(tuple(qlo), tuple(qhi))
        expect = brute.query(q).tolist()
        for idx in indexes:
            assert idx.query(q).tolist() == expect, type(idx).__name__


@given(
    seed=st.integers(0, 2**31),
    n_chunks=st.integers(1, 25),
    k=st.integers(1, 3),
    with_nans=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_pruning_never_drops_a_satisfying_chunk(seed, n_chunks, k, with_nans):
    """Conservativeness: prunable => no item in the chunk passes the
    predicate.  (The converse is not required -- synopses may keep
    chunks that turn out to contribute nothing.)"""
    rng = np.random.default_rng(seed)
    chunks = []
    for cid in range(n_chunks):
        n_items = int(rng.integers(1, 12))
        coords = rng.uniform(0, 10, size=(n_items, 2))
        values = rng.uniform(-20, 20, size=(n_items, k))
        if with_nans:
            values[rng.random((n_items, k)) < 0.3] = np.nan
        meta = ChunkMeta(
            chunk_id=cid,
            mbr=Rect(tuple(coords.min(axis=0)), tuple(coords.max(axis=0))),
            nbytes=coords.nbytes + values.nbytes,
            n_items=n_items,
        )
        chunks.append(Chunk(meta, coords, values))
    synopsis = ValueSynopsis.from_chunks(chunks)

    comp = int(rng.integers(0, k))
    lo = float(rng.uniform(-25, 20))
    hi = lo + float(rng.uniform(0, 15))
    predicate = ValuePredicate.coerce({comp: (lo, hi)})

    prunable = predicate.prunable_chunks(synopsis)
    for cid, chunk in enumerate(chunks):
        survivors = predicate.mask(chunk.values)
        if survivors.any():
            assert not prunable[cid], (
                f"chunk {cid} has {int(survivors.sum())} satisfying items "
                "but was marked prunable"
            )
        if prunable[cid]:
            # And pruning a chunk drops nothing the kernel filter
            # would have kept.
            assert not survivors.any()


@given(seed=st.integers(0, 2**31), k=st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_mask_matches_synopsis_on_single_item_chunks(seed, k):
    """With one item per chunk the synopsis is exact: prunable must
    equal the negation of the item-level mask."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 30))
    values = rng.uniform(-10, 10, size=(n, k))
    values[rng.random((n, k)) < 0.2] = np.nan
    chunks = []
    for i in range(n):
        meta = ChunkMeta(
            chunk_id=i, mbr=Rect((0.0, 0.0), (1.0, 1.0)), nbytes=8, n_items=1
        )
        chunks.append(Chunk(meta, np.zeros((1, 2)), values[i : i + 1]))
    synopsis = ValueSynopsis.from_chunks(chunks)
    comp = int(rng.integers(0, k))
    lo = float(rng.uniform(-12, 8))
    predicate = ValuePredicate.coerce({comp: (lo, lo + 5.0)})
    prunable = predicate.prunable_chunks(synopsis)
    keep = predicate.mask(values)
    assert prunable.tolist() == (~keep).tolist()
