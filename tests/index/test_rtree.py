"""Tests for the R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.brute import BruteForceIndex
from repro.index.rtree import RTree
from repro.util.geometry import Rect

from helpers import random_rects


def random_query(rng, extent=100.0, ndim=2):
    lo = rng.uniform(0, extent * 0.8, size=ndim)
    hi = lo + rng.uniform(0, extent * 0.4, size=ndim)
    return Rect(tuple(lo), tuple(hi))


class TestConstruction:
    def test_empty_tree(self):
        t = RTree(2)
        assert t.n_entries == 0
        assert t.query(Rect((0, 0), (1, 1))).tolist() == []

    def test_empty_from_rects(self):
        t = RTree.from_rects(np.empty((0, 2)), np.empty((0, 2)))
        assert t.n_entries == 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            RTree(0)
        with pytest.raises(ValueError):
            RTree(2, max_entries=2)
        with pytest.raises(ValueError):
            RTree(2, max_entries=8, min_entries=5)

    def test_insert_validation(self):
        t = RTree(2)
        with pytest.raises(ValueError):
            t.insert(0, np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            t.insert(0, np.array([1.0, 1.0]), np.array([0.0, 0.0]))


@pytest.mark.parametrize("bulk", [True, False], ids=["bulk", "insert"])
class TestQueryCorrectness:
    def test_matches_brute_force(self, rng, bulk):
        los, his = random_rects(rng, 500, 2)
        tree = RTree.from_rects(los, his, bulk=bulk)
        brute = BruteForceIndex(los, his)
        for _ in range(30):
            q = random_query(rng)
            assert tree.query(q).tolist() == brute.query(q).tolist()

    def test_3d(self, rng, bulk):
        los, his = random_rects(rng, 200, 3)
        tree = RTree.from_rects(los, his, bulk=bulk)
        brute = BruteForceIndex(los, his)
        for _ in range(15):
            q = random_query(rng, ndim=3)
            assert tree.query(q).tolist() == brute.query(q).tolist()

    def test_all_and_none(self, rng, bulk):
        los, his = random_rects(rng, 100, 2)
        tree = RTree.from_rects(los, his, bulk=bulk)
        assert len(tree.query(Rect((-1000, -1000), (1000, 1000)))) == 100
        assert len(tree.query(Rect((-10, -10), (-5, -5)))) == 0

    def test_invariants(self, rng, bulk):
        los, his = random_rects(rng, 300, 2)
        tree = RTree.from_rects(los, his, bulk=bulk)
        tree.validate()
        assert tree.n_entries == 300
        assert tree.height >= 2


class TestStructure:
    def test_height_grows_logarithmically(self, rng):
        los, his = random_rects(rng, 1000, 2)
        tree = RTree.from_rects(los, his, max_entries=8)
        # 1000 entries at fanout 8: height around 4; never linear.
        assert 3 <= tree.height <= 6
        assert tree.node_count() > 1000 / 8

    def test_incremental_inserts_stay_valid(self, rng):
        tree = RTree(2, max_entries=4)
        los, his = random_rects(rng, 120, 2)
        for i in range(120):
            tree.insert(i, los[i], his[i])
            if i % 17 == 0:
                tree.validate()
        tree.validate()
        brute = BruteForceIndex(los, his)
        q = random_query(rng)
        assert tree.query(q).tolist() == brute.query(q).tolist()

    def test_duplicate_rects_handled(self):
        los = np.zeros((50, 2))
        his = np.ones((50, 2))
        tree = RTree.from_rects(los, his, bulk=False)
        tree.validate()
        assert len(tree.query(Rect((0.5, 0.5), (0.6, 0.6)))) == 50

    def test_query_dim_mismatch(self, rng):
        los, his = random_rects(rng, 10, 2)
        tree = RTree.from_rects(los, his)
        with pytest.raises(ValueError):
            tree.query(Rect((0,), (1,)))


class TestPersistence:
    def test_save_load(self, rng, tmp_path):
        los, his = random_rects(rng, 200, 2)
        tree = RTree.from_rects(los, his)
        path = tmp_path / "index.rtree"
        tree.save(path)
        loaded = RTree.load(path)
        q = random_query(rng)
        assert loaded.query(q).tolist() == tree.query(q).tolist()

    def test_load_wrong_type(self, tmp_path):
        import pickle

        path = tmp_path / "bad.pkl"
        with open(path, "wb") as fh:
            pickle.dump({"not": "an index"}, fh)
        with pytest.raises(TypeError):
            RTree.load(path)


@given(st.integers(0, 2**31), st.integers(5, 200))
@settings(max_examples=25, deadline=None)
def test_property_rtree_equals_brute(seed, n):
    rng = np.random.default_rng(seed)
    los, his = random_rects(rng, n, 2)
    tree = RTree.from_rects(los, his, bulk=bool(seed % 2))
    tree.validate()
    brute = BruteForceIndex(los, his)
    q = random_query(rng)
    assert tree.query(q).tolist() == brute.query(q).tolist()


class TestHilbertBulkLoad:
    def test_matches_brute_force(self, rng):
        los, his = random_rects(rng, 400, 2)
        tree = RTree.from_rects(los, his, bulk="hilbert")
        tree.validate()
        brute = BruteForceIndex(los, his)
        for _ in range(20):
            q = random_query(rng)
            assert tree.query(q).tolist() == brute.query(q).tolist()

    def test_3d(self, rng):
        los, his = random_rects(rng, 200, 3)
        tree = RTree.from_rects(los, his, bulk="hilbert")
        tree.validate()
        brute = BruteForceIndex(los, his)
        q = random_query(rng, ndim=3)
        assert tree.query(q).tolist() == brute.query(q).tolist()

    def test_same_height_as_str(self, rng):
        los, his = random_rects(rng, 500, 2)
        h_str = RTree.from_rects(los, his, bulk="str").height
        h_hil = RTree.from_rects(los, his, bulk="hilbert").height
        assert h_hil == h_str  # both pack leaves fully

    def test_bad_bulk_method(self, rng):
        los, his = random_rects(rng, 10, 2)
        with pytest.raises(ValueError, match="bulk-load"):
            RTree.from_rects(los, his, bulk="zorder")
