"""Tests for Map functions (mappings)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import AffineMapping, GridMapping, IdentityMapping
from repro.util.geometry import Rect


def spaces():
    s_in = AttributeSpace.regular("in3", ("x", "y", "t"), (0, 0, 0), (10, 20, 5))
    s_out = AttributeSpace.regular("out2", ("u", "v"), (0, 0), (1, 1))
    return s_in, s_out


class TestIdentityMapping:
    def test_points_unchanged(self, rng):
        s = AttributeSpace.regular("s", ("x", "y"), (0, 0), (1, 1))
        m = IdentityMapping(s)
        pts = rng.uniform(0, 1, size=(20, 2))
        np.testing.assert_array_equal(m.map_points(pts), pts)

    def test_project_rect_identity(self):
        s = AttributeSpace.regular("s", ("x", "y"), (0, 0), (1, 1))
        m = IdentityMapping(s)
        r = Rect((0.1, 0.2), (0.5, 0.6))
        assert m.project_rect(r) == r

    def test_footprint_grows_projection(self):
        s = AttributeSpace.regular("s", ("x", "y"), (0, 0), (1, 1))
        m = IdentityMapping(s, footprint=(0.1, 0.2))
        out = m.project_rect(Rect((0.5, 0.5), (0.6, 0.6)))
        assert out == Rect((0.4, 0.3), (0.7, 0.8))

    def test_bad_points_shape(self):
        s = AttributeSpace.regular("s", ("x", "y"), (0, 0), (1, 1))
        with pytest.raises(ValueError):
            IdentityMapping(s).map_points(np.zeros((3, 3)))


class TestAffineMapping:
    def test_dim_select_projection(self):
        s_in, s_out = spaces()
        m = AffineMapping(s_in, s_out, scale=(0.1, 0.05), offset=(0, 0), dim_select=(0, 1))
        pts = np.array([[10.0, 20.0, 3.0]])
        np.testing.assert_allclose(m.map_points(pts), [[1.0, 1.0]])

    def test_between_bounds_maps_corners(self):
        s_in, s_out = spaces()
        m = AffineMapping.between_bounds(s_in, s_out, dim_select=(0, 1))
        np.testing.assert_allclose(m.map_points(np.array([[0.0, 0.0, 2.0]])), [[0, 0]])
        np.testing.assert_allclose(m.map_points(np.array([[10.0, 20.0, 2.0]])), [[1, 1]])

    def test_zero_scale_rejected(self):
        s_in, s_out = spaces()
        with pytest.raises(ValueError):
            AffineMapping(s_in, s_out, scale=(0, 1), offset=(0, 0), dim_select=(0, 1))

    def test_bad_dim_select(self):
        s_in, s_out = spaces()
        with pytest.raises(ValueError):
            AffineMapping(s_in, s_out, scale=(1, 1), offset=(0, 0), dim_select=(0, 5))

    def test_negative_footprint_rejected(self):
        s_in, s_out = spaces()
        with pytest.raises(ValueError):
            AffineMapping(
                s_in, s_out, scale=(1, 1), offset=(0, 0), dim_select=(0, 1),
                footprint=(-0.1, 0),
            )

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_project_rect_conservative(self, seed):
        """Every mapped item of a rect lies inside the rect's projection
        (the planner-safety property)."""
        rng = np.random.default_rng(seed)
        s_in, s_out = spaces()
        m = AffineMapping.between_bounds(s_in, s_out, dim_select=(0, 1), footprint=(0.02, 0.01))
        lo = rng.uniform(0, 5, size=3)
        hi = lo + rng.uniform(0, 4, size=3)
        rect = Rect(tuple(lo), tuple(hi))
        proj = m.project_rect(rect)
        pts = rng.uniform(lo, hi, size=(50, 3))
        box_lo, box_hi = m.point_footprints(pts)
        plo, phi = proj.as_arrays()
        assert (box_lo >= plo - 1e-9).all() and (box_hi <= phi + 1e-9).all()


class TestGridMapping:
    def test_cells_for_points(self):
        s_in, s_out = spaces()
        m = GridMapping(s_in, s_out, grid_shape=(10, 10), dim_select=(0, 1))
        cells = m.cells_for_points(np.array([[0.0, 0.0, 0.0], [9.99, 19.99, 0.0]]))
        assert cells[0].tolist() == [0, 0]
        assert cells[1].tolist() == [9, 9]

    def test_upper_boundary_clamped(self):
        s_in, s_out = spaces()
        m = GridMapping(s_in, s_out, grid_shape=(10, 10), dim_select=(0, 1))
        cells = m.cells_for_points(np.array([[10.0, 20.0, 0.0]]))
        assert cells[0].tolist() == [9, 9]

    def test_cell_ranges_footprint(self):
        s_in, s_out = spaces()
        m = GridMapping(s_in, s_out, grid_shape=(10, 10), dim_select=(0, 1), footprint=(0.1, 0.0))
        lo, hi = m.cell_ranges_for_points(np.array([[5.0, 10.0, 0.0]]))
        assert (hi[0] - lo[0]).tolist() == [2, 0]  # footprint spans 3 x-cells

    def test_zero_footprint_lo_equals_hi(self):
        s_in, s_out = spaces()
        m = GridMapping(s_in, s_out, grid_shape=(8, 8), dim_select=(0, 1))
        lo, hi = m.cell_ranges_for_points(np.array([[3.3, 7.7, 1.0]]))
        assert (lo == hi).all()

    def test_bad_grid_shape(self):
        s_in, s_out = spaces()
        with pytest.raises(ValueError):
            GridMapping(s_in, s_out, grid_shape=(10,), dim_select=(0, 1))
        with pytest.raises(ValueError):
            GridMapping(s_in, s_out, grid_shape=(0, 10), dim_select=(0, 1))
