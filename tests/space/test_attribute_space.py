"""Tests for the attribute space service."""

import numpy as np
import pytest

from repro.space.attribute_space import AttributeSpace, AttributeSpaceRegistry, Dimension
from repro.util.geometry import Rect


def earth():
    return AttributeSpace.regular(
        "earth", ("lon", "lat"), (-180, -90), (180, 90)
    )


class TestDimension:
    def test_extent(self):
        assert Dimension("x", -1, 3).extent == 4

    def test_bad_range(self):
        with pytest.raises(ValueError):
            Dimension("x", 2, 1)

    def test_empty_name(self):
        with pytest.raises(ValueError):
            Dimension("", 0, 1)


class TestAttributeSpace:
    def test_bounds(self):
        assert earth().bounds == Rect((-180, -90), (180, 90))

    def test_regular_constructor_mismatch(self):
        with pytest.raises(ValueError):
            AttributeSpace.regular("s", ("x",), (0, 0), (1,))

    def test_duplicate_dim_names(self):
        with pytest.raises(ValueError):
            AttributeSpace("s", (Dimension("x", 0, 1), Dimension("x", 0, 1)))

    def test_no_dims(self):
        with pytest.raises(ValueError):
            AttributeSpace("s", ())

    def test_dim_index(self):
        assert earth().dim_index("lat") == 1
        with pytest.raises(KeyError):
            earth().dim_index("alt")

    def test_contains_and_clip(self):
        s = earth()
        assert s.contains(Rect((0, 0), (10, 10)))
        assert not s.contains(Rect((170, 0), (190, 10)))
        assert s.clip(Rect((170, 0), (190, 10))) == Rect((170, 0), (180, 10))
        assert s.clip(Rect((181, 91), (200, 95))) is None

    def test_validate_query_clips(self):
        s = earth()
        assert s.validate_query(Rect((170, 0), (190, 10))) == Rect((170, 0), (180, 10))

    def test_validate_query_outside(self):
        with pytest.raises(ValueError, match="outside"):
            earth().validate_query(Rect((181, 91), (185, 95)))

    def test_validate_query_wrong_dims(self):
        with pytest.raises(ValueError, match="dims"):
            earth().validate_query(Rect((0,), (1,)))

    def test_random_points_inside(self, rng):
        s = earth()
        pts = s.random_points(100, rng)
        assert pts.shape == (100, 2)
        lo, hi = s.bounds.as_arrays()
        assert (pts >= lo).all() and (pts <= hi).all()


class TestRegistry:
    def test_register_get(self):
        reg = AttributeSpaceRegistry()
        s = reg.register(earth())
        assert reg.get("earth") is s
        assert "earth" in reg and len(reg) == 1

    def test_idempotent_reregister(self):
        reg = AttributeSpaceRegistry()
        reg.register(earth())
        reg.register(earth())  # identical: fine
        assert len(reg) == 1

    def test_conflicting_reregister(self):
        reg = AttributeSpaceRegistry()
        reg.register(earth())
        other = AttributeSpace.regular("earth", ("lon", "lat"), (0, 0), (1, 1))
        with pytest.raises(ValueError, match="different definition"):
            reg.register(other)

    def test_missing(self):
        with pytest.raises(KeyError, match="not registered"):
            AttributeSpaceRegistry().get("nope")
