"""Integration tests for the ADR façade."""

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.machine.config import MachineConfig
from repro.runtime.serial import execute_serial
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.store.chunk_store import FileChunkStore
from repro.util.geometry import Rect
from repro.util.units import MB


def build_instance(rng, n_procs=3, store=None):
    adr = ADR(machine=MachineConfig(n_procs=n_procs, memory_per_proc=1 * MB), store=store)
    in_space = AttributeSpace.regular("readings", ("x", "y"), (0, 0), (10, 10))
    out_space = AttributeSpace.regular("image", ("u", "v"), (0, 0), (1, 1))
    coords = rng.uniform(0, 10, size=(400, 2))
    values = rng.integers(0, 100, size=400).astype(float)
    chunks = hilbert_partition(coords, values, items_per_chunk=25)
    adr.load("sensors", in_space, chunks)
    grid = OutputGrid(out_space, (12, 12), (4, 4))
    mapping = GridMapping(in_space, out_space, (12, 12))
    return adr, chunks, mapping, grid


def full_query(mapping, grid, strategy="FRA", aggregation="mean"):
    return RangeQuery(
        dataset="sensors",
        region=Rect((0, 0), (10, 10)),
        mapping=mapping,
        grid=grid,
        aggregation=aggregation,
        strategy=strategy,
    )


class TestLoading:
    def test_load_registers_everything(self, rng):
        adr, chunks, _, _ = build_instance(rng)
        assert "sensors" in adr.catalog
        assert "readings" in adr.spaces
        assert adr.index("sensors").n_entries == len(chunks)
        assert adr.dataset("sensors").chunks.placed

    def test_unknown_dataset(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        q = full_query(mapping, grid)
        q.dataset = "absent"
        with pytest.raises(KeyError):
            adr.execute(q)

    def test_index_missing(self, rng):
        adr, _, _, _ = build_instance(rng)
        with pytest.raises(KeyError):
            adr.index("absent")


@pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA", "HYBRID", "AUTO"])
class TestExecution:
    def test_matches_serial(self, rng, strategy):
        adr, chunks, mapping, grid = build_instance(rng)
        result = adr.execute(full_query(mapping, grid, strategy))
        serial = execute_serial(chunks, mapping, grid, full_query(mapping, grid).spec())
        assert set(result.output_ids.tolist()) == set(serial)
        for o, vals in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(vals, serial[int(o)], equal_nan=True)


class TestPartialQueries:
    def test_sub_region_selects_subset(self, rng):
        adr, chunks, mapping, grid = build_instance(rng)
        q = full_query(mapping, grid)
        q.region = Rect((0, 0), (3, 3))
        result = adr.execute(q)
        assert 0 < len(result.output_ids) < grid.n_chunks

    def test_sub_region_values_match_full(self, rng):
        """Computed chunks of a partial query agree with the full query
        wherever all contributing input falls inside the region."""
        adr, chunks, mapping, grid = build_instance(rng)
        full = adr.execute(full_query(mapping, grid, aggregation="sum")).as_dict()
        q = full_query(mapping, grid, aggregation="sum")
        q.region = Rect((0, 0), (10, 5))
        part = adr.execute(q).as_dict()
        # interior chunk fully inside the half-plane: identical sums
        interior = [
            o for o in part
            if grid.chunkset().his[o][1] < 0.5 - 1e-9
        ]
        assert interior, "expected interior chunks in the test region"
        for o in interior:
            np.testing.assert_allclose(part[o], full[o])

    def test_region_outside_space(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        q = full_query(mapping, grid)
        q.region = Rect((20, 20), (30, 30))
        with pytest.raises(ValueError):
            adr.execute(q)

    def test_empty_selection(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        q = full_query(mapping, grid)
        # a sliver that intersects the space but (almost surely) no chunk
        q.region = Rect((9.9999, 9.9999), (10, 10))
        try:
            adr.execute(q)
        except ValueError as e:
            assert "selects no input chunks" in str(e)


class TestPlanningSurface:
    def test_plan_validates_and_reports(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        plan = adr.plan(full_query(mapping, grid, "DA"))
        assert plan.strategy == "DA"
        assert plan.n_tiles >= 1

    def test_auto_picks_a_strategy(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        plan = adr.plan(full_query(mapping, grid, "AUTO"))
        assert plan.strategy in {"FRA", "SRA", "DA", "HYBRID"}

    def test_auto_execute_stamps_choice(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        res = adr.execute(full_query(mapping, grid, "AUTO"))
        assert res.selected_strategy == res.strategy
        assert res.selected_strategy in {"FRA", "SRA", "DA", "HYBRID"}
        # the full priced ranking is exposed, cheapest first
        totals = list(res.strategy_ranking.values())
        assert totals == sorted(totals)
        assert next(iter(res.strategy_ranking)) == res.selected_strategy
        assert set(res.strategy_ranking) == {"FRA", "SRA", "DA", "HYBRID"}

    def test_fixed_strategy_has_no_choice_stamp(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        res = adr.execute(full_query(mapping, grid, "DA"))
        assert res.selected_strategy == ""
        assert res.strategy_ranking == {}

    def test_auto_matches_explicit_execution(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        auto = adr.execute(full_query(mapping, grid, "AUTO"))
        explicit = adr.execute(full_query(mapping, grid, auto.selected_strategy))
        assert auto.output_ids.tolist() == explicit.output_ids.tolist()
        for av, ev in zip(auto.chunk_values, explicit.chunk_values):
            assert np.array_equal(av, ev, equal_nan=True)

    def test_simulate(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        res = adr.simulate(full_query(mapping, grid), strategy="FRA")
        assert res.total_time > 0
        assert res.strategy == "FRA"

    def test_build_problem_global_ids(self, rng):
        adr, chunks, mapping, grid = build_instance(rng)
        prob = adr.build_problem(full_query(mapping, grid))
        assert len(prob.input_global_ids) == len(chunks)
        assert len(prob.output_global_ids) == grid.n_chunks


class TestFileStoreBacked:
    def test_end_to_end_on_disk(self, rng, tmp_path):
        store = FileChunkStore(tmp_path / "farm")
        adr, chunks, mapping, grid = build_instance(rng, store=store)
        result = adr.execute(full_query(mapping, grid, "DA", aggregation="sum"))
        serial = execute_serial(chunks, mapping, grid, full_query(mapping, grid, aggregation="sum").spec())
        for o, vals in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(vals, serial[int(o)])


class TestQuerySpec:
    def test_unknown_aggregation(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        q = full_query(mapping, grid, aggregation="median")
        with pytest.raises(ValueError, match="unknown aggregation"):
            q.spec()

    def test_spec_instance_passthrough(self, rng):
        from repro.aggregation.functions import SumAggregation

        _, _, mapping, grid = build_instance(rng)
        spec = SumAggregation(1)
        q = full_query(mapping, grid, aggregation=spec)
        assert q.spec() is spec

    def test_unknown_strategy_at_plan_time(self, rng):
        adr, _, mapping, grid = build_instance(rng)
        with pytest.raises(ValueError):
            adr.plan(full_query(mapping, grid, "WAT"))


class TestRobustness:
    """Retry and degraded execution wired through the façade."""

    def test_retry_sits_under_the_cache(self):
        from repro.store.cache import CachedChunkStore
        from repro.store.retry import RetryPolicy, RetryingChunkStore

        adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB),
                  retry=RetryPolicy(base_delay=0))
        assert isinstance(adr.store, CachedChunkStore)
        assert isinstance(adr.store.inner, RetryingChunkStore)

    def test_flaky_store_healed_by_retry(self, rng):
        """Two injected I/O failures are absorbed by the façade's retry
        policy; the result matches the clean serial run exactly."""
        from repro.faults import FaultInjector, FaultPlan, FaultyChunkStore
        from repro.store.chunk_store import MemoryChunkStore
        from repro.store.retry import RetryPolicy

        faulty = FaultyChunkStore(
            MemoryChunkStore(), FaultInjector(FaultPlan.flaky_read(times=2))
        )
        adr = ADR(machine=MachineConfig(n_procs=3, memory_per_proc=1 * MB),
                  store=faulty, retry=RetryPolicy(max_attempts=4, base_delay=0))
        in_space = AttributeSpace.regular("readings", ("x", "y"), (0, 0), (10, 10))
        out_space = AttributeSpace.regular("image", ("u", "v"), (0, 0), (1, 1))
        coords = rng.uniform(0, 10, size=(400, 2))
        values = rng.integers(0, 100, size=400).astype(float)
        chunks = hilbert_partition(coords, values, items_per_chunk=25)
        adr.load("sensors", in_space, chunks)
        grid = OutputGrid(out_space, (12, 12), (4, 4))
        mapping = GridMapping(in_space, out_space, (12, 12))
        q = full_query(mapping, grid, "FRA", aggregation="sum")
        result = adr.execute(q)
        assert result.completeness == 1.0 and result.chunk_errors == {}
        serial = execute_serial(chunks, mapping, grid, q.spec())
        for o, vals in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(vals, serial[int(o)])

    def test_degraded_query_through_facade(self, rng):
        """on_error='degrade' on the RangeQuery flows to the engine and
        surfaces the lost chunk in the result."""
        from repro.faults import FaultInjector, FaultPlan, FaultyChunkStore
        from repro.store.chunk_store import MemoryChunkStore

        faulty = FaultyChunkStore(
            MemoryChunkStore(),
            FaultInjector(FaultPlan.corrupt_chunk(0, dataset="sensors")),
        )
        adr, chunks, mapping, grid = build_instance(rng, store=faulty)
        q = full_query(mapping, grid, "FRA", aggregation="sum")
        with pytest.raises(Exception, match="CRC"):
            adr.execute(q)  # default on_error='raise' propagates
        q.on_error = "degrade"
        result = adr.execute(q)
        assert len(result.chunk_errors) == 1
        (msg,) = result.chunk_errors.values()
        assert "CorruptChunkError" in msg
        assert result.completeness == pytest.approx(1 - 1 / len(chunks))
