"""Tests for parallel-client output redistribution."""

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.frontend.redistribute import (
    build_schedule,
    client_distribution,
    estimate_transfer_time,
    scatter_result,
)
from repro.machine.config import MachineConfig
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import MB


@pytest.fixture
def executed(rng):
    adr = ADR(machine=MachineConfig(n_procs=3, memory_per_proc=MB))
    space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
    coords = rng.uniform(0, 10, size=(300, 2))
    adr.load("d", space, hilbert_partition(coords, np.ones(300), 20))
    out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(out_space, (8, 8), (2, 2))  # 16 output chunks
    mapping = GridMapping(space, out_space, (8, 8))
    q = RangeQuery("d", Rect((0, 0), (10, 10)), mapping, grid,
                   aggregation="sum", strategy="FRA")
    plan = adr.plan(q)
    result = adr.execute(q, plan=plan)
    return adr, plan, result


class TestDistribution:
    def test_block(self):
        d = client_distribution(10, 3, "block")
        assert d.tolist() == [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]

    def test_cyclic(self):
        d = client_distribution(7, 3, "cyclic")
        assert d.tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_more_clients_than_chunks(self):
        d = client_distribution(2, 5, "block")
        assert d.max() < 5

    def test_validation(self):
        with pytest.raises(ValueError):
            client_distribution(4, 0)
        with pytest.raises(ValueError):
            client_distribution(4, 2, "diagonal")


class TestSchedule:
    def test_every_chunk_scheduled_once(self, executed):
        _, plan, _ = executed
        s = build_schedule(plan, 4)
        assert len(s) == plan.problem.n_out
        assert sorted(s.chunk.tolist()) == list(range(plan.problem.n_out))

    def test_sources_are_owners(self, executed):
        _, plan, _ = executed
        s = build_schedule(plan, 4)
        assert s.src.tolist() == plan.problem.output_owner.tolist()

    def test_conservation(self, executed):
        _, plan, _ = executed
        s = build_schedule(plan, 4)
        assert s.bytes_per_src().sum() == s.total_bytes
        assert s.bytes_per_dst().sum() == s.total_bytes

    def test_block_balance(self, executed):
        _, plan, _ = executed
        s = build_schedule(plan, 4)  # 16 equal chunks over 4 clients
        assert s.client_balance == pytest.approx(1.0)

    def test_explicit_distribution(self, executed):
        _, plan, _ = executed
        n = plan.problem.n_out
        dst = np.zeros(n, dtype=np.int64)
        s = build_schedule(plan, 2, dst)
        assert s.bytes_per_dst()[1] == 0

    def test_bad_explicit_distribution(self, executed):
        _, plan, _ = executed
        with pytest.raises(ValueError):
            build_schedule(plan, 2, np.array([0]))
        with pytest.raises(ValueError):
            build_schedule(plan, 2, np.full(plan.problem.n_out, 7))

    def test_summary(self, executed):
        _, plan, _ = executed
        assert "client balance" in build_schedule(plan, 2).summary()


class TestScatter:
    def test_every_value_delivered_exactly_once(self, executed):
        _, plan, result = executed
        s = build_schedule(plan, 3, "cyclic")
        buckets = scatter_result(result, plan, s)
        delivered = sorted(o for b in buckets for o in b)
        assert delivered == sorted(int(o) for o in result.output_ids)

    def test_values_unmodified(self, executed):
        _, plan, result = executed
        s = build_schedule(plan, 2)
        buckets = scatter_result(result, plan, s)
        merged = {o: v for b in buckets for o, v in b.items()}
        for o, v in zip(result.output_ids, result.chunk_values):
            np.testing.assert_array_equal(merged[int(o)], v)

    def test_block_gives_contiguous_ids(self, executed):
        _, plan, result = executed
        s = build_schedule(plan, 4, "block")
        buckets = scatter_result(result, plan, s)
        for b in buckets:
            ids = sorted(b)
            if len(ids) > 1:
                assert ids == list(range(ids[0], ids[-1] + 1))


class TestTransferTime:
    def test_positive_and_scales_with_clients(self, executed):
        adr, plan, _ = executed
        t1 = estimate_transfer_time(build_schedule(plan, 1), adr.machine)
        t4 = estimate_transfer_time(build_schedule(plan, 4), adr.machine)
        assert t1 > t4 > 0  # one client process is the receive bottleneck
