"""Tests for in-place update queries (the paper's existing-dataset path)."""

import numpy as np
import pytest

from repro.aggregation.functions import MeanAggregation
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.machine.config import MachineConfig
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import MB


def build(rng, n=400):
    adr = ADR(machine=MachineConfig(n_procs=3, memory_per_proc=MB))
    space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
    coords = rng.uniform(0, 10, size=(n, 2))
    values = rng.integers(1, 40, size=n).astype(float)
    out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(out_space, (8, 8), (4, 4))
    mapping = GridMapping(space, out_space, (8, 8))
    return adr, space, coords, values, mapping, grid


FULL = Rect((0, 0), (10, 10))


class TestUpdateQueries:
    @pytest.mark.parametrize("agg,combine_np", [("sum", np.add), ("max", np.fmax)])
    def test_update_equals_recompute_over_union(self, rng, agg, combine_np):
        adr, space, coords, values, mapping, grid = build(rng)
        half = len(coords) // 2
        chunks1 = hilbert_partition(coords[:half], values[:half], 25)
        adr.load("batch1", space, chunks1)
        q1 = RangeQuery("batch1", FULL, mapping, grid, aggregation=agg, strategy="FRA")
        adr.execute(q1, store_as="composite")

        # second acquisition arrives; update the composite in place
        chunks2 = hilbert_partition(coords[half:], values[half:], 25)
        adr.load("batch2", space, chunks2)
        q2 = RangeQuery("batch2", FULL, mapping, grid, aggregation=agg, strategy="DA")
        adr.update(q2, target="composite")

        # reference: one query over everything
        adr.load("all", space, hilbert_partition(coords, values, 25))
        q_all = RangeQuery("all", FULL, mapping, grid, aggregation=agg, strategy="FRA")
        expected = adr.execute(q_all)

        for i, (out_id, exp) in enumerate(
            zip(expected.output_ids, expected.chunk_values)
        ):
            got = adr.store.read_chunk("composite", i).values
            np.testing.assert_allclose(got, exp, equal_nan=True)

    def test_update_returns_updated_values(self, rng):
        adr, space, coords, values, mapping, grid = build(rng)
        adr.load("b1", space, hilbert_partition(coords, values, 25))
        q = RangeQuery("b1", FULL, mapping, grid, aggregation="sum", strategy="FRA")
        first = adr.execute(q, store_as="c")
        result = adr.update(q, target="c")  # same data again: doubles
        for a, b in zip(result.chunk_values, first.chunk_values):
            np.testing.assert_allclose(a, 2 * b)

    def test_update_unknown_target(self, rng):
        adr, space, coords, values, mapping, grid = build(rng)
        adr.load("b1", space, hilbert_partition(coords, values, 25))
        q = RangeQuery("b1", FULL, mapping, grid, aggregation="sum")
        with pytest.raises(KeyError, match="materialized"):
            adr.update(q, target="nope")

    def test_update_with_non_invertible_aggregation(self, rng):
        adr, space, coords, values, mapping, grid = build(rng)
        adr.load("b1", space, hilbert_partition(coords, values, 25))
        q = RangeQuery("b1", FULL, mapping, grid, aggregation="mean", strategy="FRA")
        adr.execute(q, store_as="c")
        with pytest.raises(NotImplementedError, match="rebuild"):
            adr.update(q, target="c")

    def test_idempotent_flagging(self):
        from repro.aggregation.functions import (
            MaxAggregation,
            MinAggregation,
            SumAggregation,
        )

        assert MaxAggregation(1).idempotent
        assert MinAggregation(1).idempotent
        assert not SumAggregation(1).idempotent
        assert not MeanAggregation(1).idempotent
