"""Tests for the socket front-end service."""

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.frontend.service import ADRClient, ADRServer
from repro.machine.config import MachineConfig
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import MB


@pytest.fixture
def service(rng):
    adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
    in_space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
    coords = rng.uniform(0, 10, size=(200, 2))
    values = rng.integers(1, 20, size=200).astype(float)
    adr.load("sensors", in_space, hilbert_partition(coords, values, 20))
    out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(out_space, (6, 6), (3, 3))
    mapping = GridMapping(in_space, out_space, (6, 6))
    query = RangeQuery("sensors", Rect((0, 0), (10, 10)), mapping, grid,
                       aggregation="sum", strategy="FRA")
    with ADRServer(adr, port=0) as server:
        yield adr, server, query


class TestService:
    def test_ping(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            assert client.ping()

    def test_query_over_the_wire_matches_local(self, service):
        adr, server, query = service
        local = adr.execute(query)
        with ADRClient(*server.address) as client:
            remote = client.query(query)
        assert remote.output_ids.tolist() == local.output_ids.tolist()
        for a, b in zip(remote.chunk_values, local.chunk_values):
            np.testing.assert_allclose(a, b, equal_nan=True)

    def test_multiple_requests_one_connection(self, service):
        adr, server, query = service
        with ADRClient(*server.address) as client:
            assert client.ping()
            r1 = client.query(query)
            r2 = client.query(query)
            assert r1.output_ids.tolist() == r2.output_ids.tolist()

    def test_two_clients(self, service):
        adr, server, query = service
        with ADRClient(*server.address) as c1, ADRClient(*server.address) as c2:
            assert c1.ping() and c2.ping()
            assert c1.query(query).n_reads == c2.query(query).n_reads

    def test_unknown_dataset_error_travels_back(self, service):
        adr, server, query = service
        query.dataset = "absent"
        with ADRClient(*server.address) as client:
            with pytest.raises(RuntimeError, match="rejected"):
                client.query(query)

    def test_unknown_op(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            response = client._call({"op": "teleport"})
            assert not response["ok"]
            assert "unknown op" in response["error"]

    def test_malformed_json_survives(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            import json

            raw = client._file.readline()
            response = json.loads(raw)
            assert not response["ok"]
            # connection still usable afterwards
            assert client.ping()
