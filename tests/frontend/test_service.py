"""Tests for the socket front-end service."""

import json
import threading
import time

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.frontend.service import ADRClient, ADRServer
from repro.machine.config import MachineConfig
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import MB


@pytest.fixture
def service(rng):
    adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
    in_space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
    coords = rng.uniform(0, 10, size=(200, 2))
    values = rng.integers(1, 20, size=200).astype(float)
    adr.load("sensors", in_space, hilbert_partition(coords, values, 20))
    out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(out_space, (6, 6), (3, 3))
    mapping = GridMapping(in_space, out_space, (6, 6))
    query = RangeQuery("sensors", Rect((0, 0), (10, 10)), mapping, grid,
                       aggregation="sum", strategy="FRA")
    with ADRServer(adr, port=0) as server:
        yield adr, server, query


class TestService:
    def test_ping(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            assert client.ping()

    def test_query_over_the_wire_matches_local(self, service):
        adr, server, query = service
        local = adr.execute(query)
        with ADRClient(*server.address) as client:
            remote = client.query(query)
        assert remote.output_ids.tolist() == local.output_ids.tolist()
        for a, b in zip(remote.chunk_values, local.chunk_values):
            np.testing.assert_allclose(a, b, equal_nan=True)

    def test_multiple_requests_one_connection(self, service):
        adr, server, query = service
        with ADRClient(*server.address) as client:
            assert client.ping()
            r1 = client.query(query)
            r2 = client.query(query)
            assert r1.output_ids.tolist() == r2.output_ids.tolist()

    def test_two_clients(self, service):
        adr, server, query = service
        with ADRClient(*server.address) as c1, ADRClient(*server.address) as c2:
            assert c1.ping() and c2.ping()
            assert c1.query(query).n_reads == c2.query(query).n_reads

    def test_unknown_dataset_error_travels_back(self, service):
        adr, server, query = service
        query.dataset = "absent"
        with ADRClient(*server.address) as client:
            with pytest.raises(RuntimeError, match="rejected"):
                client.query(query)

    def test_unknown_op(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            response = client._call({"op": "teleport"})
            assert not response["ok"]
            assert "unknown op" in response["error"]

    def test_malformed_json_survives(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            raw = client._file.readline()
            response = json.loads(raw)
            assert not response["ok"]
            # connection still usable afterwards
            assert client.ping()


class TestErrorCodes:
    """Structured protocol errors: machine-distinguishable ``code``
    next to the back-compat free-text ``error``."""

    def test_bad_request_code_for_unknown_dataset(self, service):
        adr, server, query = service
        query.dataset = "absent"
        with ADRClient(*server.address) as client:
            response = client._call(
                {"op": "query", "query": query_to_dict_helper(query)}
            )
            assert response["ok"] is False
            assert response["code"] == "bad_request"
            assert "absent" in response["error"]

    def test_bad_request_code_for_malformed_payload(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            response = client._call({"op": "query", "query": {"version": 99}})
            assert response["code"] == "bad_request"

    def test_bad_request_code_for_unknown_op(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            response = client._call({"op": "teleport"})
            assert response["code"] == "bad_request"

    def test_malformed_json_gets_bad_request_code(self, service):
        adr, server, _ = service
        with ADRClient(*server.address) as client:
            client._file.write(b"not json at all\n")
            client._file.flush()
            response = json.loads(client._file.readline())
            assert response["code"] == "bad_request"

    def test_client_error_message_carries_code(self, service):
        adr, server, query = service
        query.dataset = "absent"
        with ADRClient(*server.address) as client:
            with pytest.raises(RuntimeError, match=r"\[bad_request\]"):
                client.query(query)

    def test_overloaded_code_when_queue_full(self, rng):
        """Admission-control rejections travel as ``overloaded``."""
        from repro.frontend.queryservice import ServicePolicy
        from repro.store.chunk_store import ChunkStore, MemoryChunkStore

        class GateStore(ChunkStore):
            def __init__(self, inner):
                self.inner = inner
                self.gate = threading.Event()

            def read_chunk(self, dataset, chunk_id):
                assert self.gate.wait(timeout=30)
                return self.inner.read_chunk(dataset, chunk_id)

            def write_chunk(self, dataset, chunk, node, disk):
                self.inner.write_chunk(dataset, chunk, node, disk)

            def delete_dataset(self, dataset):
                self.inner.delete_dataset(dataset)

            def placement(self, dataset, chunk_id):
                return self.inner.placement(dataset, chunk_id)

            def chunk_ids(self, dataset):
                return self.inner.chunk_ids(dataset)

        gate = GateStore(MemoryChunkStore())
        adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB), store=gate)
        in_space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
        coords = rng.uniform(0, 10, size=(100, 2))
        values = rng.integers(1, 20, size=100).astype(float)
        adr.load("sensors", in_space, hilbert_partition(coords, values, 20))
        out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
        grid = OutputGrid(out_space, (6, 6), (3, 3))
        mapping = GridMapping(in_space, out_space, (6, 6))
        query = RangeQuery("sensors", Rect((0, 0), (10, 10)), mapping, grid,
                           aggregation="sum", strategy="FRA")
        policy = ServicePolicy(max_queue=1, max_inflight=1, batch_max=1)
        with ADRServer(adr, port=0, policy=policy) as server:
            background = []

            def blocked_query():
                with ADRClient(*server.address) as c:
                    background.append(c.query(query))

            threads = [threading.Thread(target=blocked_query) for _ in range(2)]
            deadline = time.monotonic() + 10
            with ADRClient(*server.address) as probe:
                def wait_for(condition):
                    while True:
                        stats = probe.stats()
                        if condition(stats):
                            return
                        assert time.monotonic() < deadline, stats
                        time.sleep(0.01)

                # sequence the saturation: first query in flight
                # (blocked on the gate), then the second one queued --
                # submitting both at once would race the worker's
                # dequeue and reject a background client instead of
                # the probe.
                threads[0].start()
                wait_for(lambda s: s["in_flight"] >= 1)
                threads[1].start()
                wait_for(lambda s: s["queue_depth"] >= 1)
                response = probe._call(
                    {"op": "query", "query": query_to_dict_helper(query)}
                )
                assert response["ok"] is False
                assert response["code"] == "overloaded"
            server.service.adr.store.gate.set()
            for t in threads:
                t.join(timeout=30)
            assert len(background) == 2


def query_to_dict_helper(query):
    from repro.frontend.protocol import query_to_dict

    return query_to_dict(query)


class TestStatsEndpoint:
    def test_stats_roundtrip(self, service):
        adr, server, query = service
        with ADRClient(*server.address) as client:
            before = client.stats()
            assert before["queue_depth"] == 0
            client.query(query)
            after = client.stats()
        assert after["completed"] == before["completed"] + 1
        assert after["submitted"] == before["submitted"] + 1
        for key in ("rejected", "failed", "batches", "batched_queries",
                    "shared_reads", "shared_bytes", "in_flight", "policy",
                    "cache"):
            assert key in after
        assert 0.0 <= after["cache"]["chunk_hit_rate"] <= 1.0

    def test_stats_is_json_clean(self, service):
        adr, server, query = service
        with ADRClient(*server.address) as client:
            client.query(query)
            stats = client.stats()
        json.dumps(stats)  # wire-safe by construction


class TestQueryServiceInfo:
    def test_response_carries_service_diagnostics(self, service):
        adr, server, query = service
        with ADRClient(*server.address) as client:
            result, info = client.query_with_info(query)
        assert result.n_reads > 0
        assert info is not None
        for key in ("queue_wait_s", "batch_size", "batch_pos",
                    "shared_reads", "shared_bytes"):
            assert key in info
        assert info["batch_size"] >= 1


class TestClientThreadSafety:
    def test_shared_client_serializes_frames(self, service):
        """Regression: one ADRClient shared by many threads must not
        interleave request/response frames (the old unlocked client
        corrupted the stream)."""
        adr, server, query = service
        expected = adr.execute(query)
        failures = []
        lock = threading.Lock()
        with ADRClient(*server.address) as client:
            def hammer(tid):
                try:
                    for i in range(5):
                        if (tid + i) % 2:
                            assert client.ping()
                        else:
                            result = client.query(query)
                            assert result.output_ids.tolist() == \
                                expected.output_ids.tolist()
                            for a, b in zip(result.chunk_values,
                                            expected.chunk_values):
                                np.testing.assert_allclose(a, b, equal_nan=True)
                except BaseException as e:
                    with lock:
                        failures.append(e)

            threads = [threading.Thread(target=hammer, args=(t,))
                       for t in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert not failures, failures[0]


class TestClientDeadlines:
    @pytest.fixture
    def black_hole(self):
        """A listener that accepts connections and never answers."""
        import socket

        sink = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sink.bind(("127.0.0.1", 0))
        sink.listen(4)
        yield sink.getsockname()
        sink.close()

    def test_deadline_bounds_a_stalled_exchange(self, black_hole):
        from repro.frontend.protocol import DeadlineExceededError

        client = ADRClient(*black_hole, timeout=30.0)
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            client.ping(deadline=0.3)
        assert time.monotonic() - start < 5.0
        client.close()

    def test_expired_client_is_broken_until_reopened(self, black_hole):
        from repro.frontend.protocol import DeadlineExceededError

        client = ADRClient(*black_hole, timeout=30.0)
        with pytest.raises(DeadlineExceededError):
            client.ping(deadline=0.2)
        # The stream is desynchronized; reuse must fail loudly rather
        # than read the stalled exchange's eventual response bytes.
        with pytest.raises(ConnectionError, match="open a new ADRClient"):
            client.ping()
        client.close()

    def test_deadline_does_not_fire_on_fast_exchanges(self, service):
        adr, server, query = service
        with ADRClient(*server.address) as client:
            assert client.ping(deadline=10.0)
            result = client.query(query, deadline=30.0)
            assert result.n_reads > 0


class TestInterleavedOps:
    def test_mixed_op_sequence_on_one_connection(self, service):
        """Every op type interleaved on a single connection: each
        response must match its request (no frame misattribution)."""
        adr, server, query = service
        expected = adr.execute(query)
        with ADRClient(*server.address) as client:
            assert client.ping()
            r1 = client.query(query)
            stats = client.stats()
            health = client.health()
            r2 = client.query(query)
        assert health["status"] == "serving"
        assert stats["completed"] >= 1
        for r in (r1, r2):
            assert r.output_ids.tolist() == expected.output_ids.tolist()
            for a, b in zip(r.chunk_values, expected.chunk_values):
                np.testing.assert_allclose(a, b, equal_nan=True)


class TestDrainOverTheWire:
    def test_drain_rejects_queries_keeps_probes(self, service):
        from repro.frontend.service import RemoteQueryError

        adr, server, query = service
        with ADRClient(*server.address) as client:
            health = client.drain()
            assert health["status"] == "draining"
            # Probes keep working so operators can watch the drain.
            assert client.ping()
            assert client.health()["status"] == "draining"
            with pytest.raises(RemoteQueryError) as exc:
                client.query(query)
            assert exc.value.code == "shard_unavailable"
