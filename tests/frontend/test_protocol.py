"""Tests for the client wire protocol."""

import json

import numpy as np
import pytest

from repro.aggregation.functions import SumAggregation
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.adr import ADR
from repro.frontend.protocol import (
    ProtocolError,
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.frontend.query import RangeQuery
from repro.machine.config import MachineConfig
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping, IdentityMapping
from repro.util.geometry import Rect
from repro.util.units import MB


def make_query():
    in_space = AttributeSpace.regular("s", ("x", "y", "t"), (0, 0, 0), (10, 10, 5))
    out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(out_space, (8, 8), (4, 4), cell_value_bytes=16)
    mapping = GridMapping(in_space, out_space, (8, 8), dim_select=(0, 1),
                          footprint=(0.01, 0.02))
    return RangeQuery("sensors", Rect((1, 2, 0), (9, 8, 5)), mapping, grid,
                      aggregation="mean", strategy="SRA", value_components=3)


class TestQueryRoundTrip:
    def test_json_roundtrip_preserves_everything(self):
        q = make_query()
        payload = json.loads(json.dumps(query_to_dict(q)))
        back = query_from_dict(payload)
        assert back.dataset == q.dataset
        assert back.region == q.region
        assert back.strategy == "SRA"
        assert back.aggregation == "mean"
        assert back.value_components == 3
        assert back.grid.grid_shape == q.grid.grid_shape
        assert back.grid.chunk_shape == q.grid.chunk_shape
        assert back.grid.cell_value_bytes == 16
        assert back.mapping.dim_select == q.mapping.dim_select
        assert back.mapping.footprint == q.mapping.footprint
        assert back.mapping.input_space == q.mapping.input_space

    def test_spec_instance_encoded_by_name(self):
        q = make_query()
        q.aggregation = SumAggregation(3)
        payload = query_to_dict(q)
        assert payload["aggregation"] == "sum"

    def test_custom_spec_rejected(self):
        class Weird(SumAggregation):
            pass

        q = make_query()
        q.aggregation = Weird(1)
        with pytest.raises(ProtocolError, match="not wire-serializable"):
            query_to_dict(q)

    def test_non_grid_mapping_rejected(self):
        q = make_query()
        q.mapping = IdentityMapping(q.mapping.output_space)
        with pytest.raises(ProtocolError, match="GridMapping"):
            query_to_dict(q)

    def test_unknown_aggregation_rejected(self):
        q = make_query()
        q.aggregation = "median"
        with pytest.raises(ProtocolError):
            query_to_dict(q)

    def test_bad_version(self):
        payload = query_to_dict(make_query())
        payload["version"] = 99
        with pytest.raises(ProtocolError, match="version"):
            query_from_dict(payload)

    def test_missing_field(self):
        payload = query_to_dict(make_query())
        del payload["grid"]
        with pytest.raises(ProtocolError, match="grid"):
            query_from_dict(payload)


class TestDegradedResultsOnTheWire:
    """on_error / chunk_errors / completeness cross the wire, and only
    when non-default -- clean payloads stay byte-identical to old ones."""

    @staticmethod
    def make_result(**kw):
        from repro.runtime.engine import QueryResult

        return QueryResult(
            strategy="FRA", output_ids=np.array([0]),
            chunk_values=[np.array([[1.0]])],
            n_tiles=1, n_reads=1, bytes_read=10, n_combines=0,
            n_aggregations=1, **kw,
        )

    def test_degraded_result_roundtrip(self):
        res = self.make_result(
            chunk_errors={7: "CorruptChunkError: CRC mismatch"},
            completeness=0.875,
        )
        back = result_from_dict(json.loads(json.dumps(result_to_dict(res))))
        assert back.chunk_errors == {7: "CorruptChunkError: CRC mismatch"}
        assert back.completeness == 0.875

    def test_chunk_error_keys_restored_to_ints(self):
        """JSON forces object keys to strings; decoding restores ints."""
        res = self.make_result(chunk_errors={3: "OSError: gone"},
                               completeness=0.9)
        back = result_from_dict(json.loads(json.dumps(result_to_dict(res))))
        assert list(back.chunk_errors) == [3]

    def test_clean_result_payload_has_no_robustness_keys(self):
        payload = result_to_dict(self.make_result())
        assert "chunk_errors" not in payload
        assert "completeness" not in payload

    def test_old_result_payload_decodes_clean(self):
        back = result_from_dict(json.loads(json.dumps(
            result_to_dict(self.make_result()))))
        assert back.chunk_errors == {} and back.completeness == 1.0

    def test_query_on_error_roundtrip(self):
        q = make_query()
        q.on_error = "degrade"
        payload = json.loads(json.dumps(query_to_dict(q)))
        assert payload["on_error"] == "degrade"
        assert query_from_dict(payload).on_error == "degrade"

    def test_default_query_payload_has_no_on_error_key(self):
        payload = query_to_dict(make_query())
        assert "on_error" not in payload
        assert query_from_dict(payload).on_error == "raise"

    def test_unknown_on_error_rejected_at_construction(self):
        import dataclasses

        with pytest.raises(ValueError, match="on_error"):
            dataclasses.replace(make_query(), on_error="shrug")


class TestResultRoundTrip:
    def test_end_to_end_through_the_wire(self, rng):
        """A full client interaction: encode query, decode server-side,
        execute, encode result, decode client-side."""
        adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
        in_space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
        coords = rng.uniform(0, 10, size=(200, 2))
        values = rng.integers(1, 20, size=200).astype(float)
        adr.load("sensors", in_space, hilbert_partition(coords, values, 20))
        out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
        grid = OutputGrid(out_space, (6, 6), (3, 3))
        mapping = GridMapping(in_space, out_space, (6, 6))
        q = RangeQuery("sensors", Rect((0, 0), (10, 10)), mapping, grid,
                       aggregation="mean", strategy="FRA")

        wire_query = json.dumps(query_to_dict(q))
        server_query = query_from_dict(json.loads(wire_query))
        result = adr.execute(server_query)
        wire_result = json.dumps(result_to_dict(result))
        client_result = result_from_dict(json.loads(wire_result))

        assert client_result.output_ids.tolist() == result.output_ids.tolist()
        for a, b in zip(client_result.chunk_values, result.chunk_values):
            np.testing.assert_allclose(a, b, equal_nan=True)
        assert client_result.n_reads == result.n_reads

    def test_nan_encoding(self):
        from repro.runtime.engine import QueryResult

        res = QueryResult(
            strategy="FRA",
            output_ids=np.array([0]),
            chunk_values=[np.array([[1.0, np.nan]])],
            n_tiles=1, n_reads=1, bytes_read=10, n_combines=0, n_aggregations=1,
        )
        payload = json.loads(json.dumps(result_to_dict(res)))
        back = result_from_dict(payload)
        assert back.chunk_values[0][0, 0] == 1.0
        assert np.isnan(back.chunk_values[0][0, 1])

    def test_result_bad_version(self):
        with pytest.raises(ProtocolError):
            result_from_dict({"version": 0})

    def test_phase_times_and_cache_stats_roundtrip(self):
        from repro.runtime.engine import QueryResult

        res = QueryResult(
            strategy="FRA",
            output_ids=np.array([0]),
            chunk_values=[np.array([[2.0]])],
            n_tiles=1, n_reads=1, bytes_read=10, n_combines=0, n_aggregations=1,
            phase_times={"initialize": 0.25, "reduce": 1.5,
                         "combine": 0.0, "output": 0.125},
            cache_stats={"routing_hits": 3, "routing_misses": 1,
                         "pool_reuses": 2},
        )
        back = result_from_dict(json.loads(json.dumps(result_to_dict(res))))
        assert back.phase_times == res.phase_times
        assert back.cache_stats == res.cache_stats

    def test_result_without_timings_stays_empty(self):
        """Old payloads (and counters-only servers) decode to empty
        dicts, not missing attributes."""
        from repro.runtime.engine import QueryResult

        res = QueryResult(
            strategy="FRA",
            output_ids=np.array([0]),
            chunk_values=[np.array([[2.0]])],
            n_tiles=1, n_reads=1, bytes_read=10, n_combines=0, n_aggregations=1,
        )
        payload = json.loads(json.dumps(result_to_dict(res)))
        assert "phase_times" not in payload and "cache_stats" not in payload
        back = result_from_dict(payload)
        assert back.phase_times == {} and back.cache_stats == {}


class TestStrategyChoiceOnTheWire:
    def _result(self, **kw):
        from repro.runtime.engine import QueryResult

        return QueryResult(
            strategy="SRA",
            output_ids=np.array([0]),
            chunk_values=[np.array([[2.0]])],
            n_tiles=1, n_reads=1, bytes_read=10, n_combines=0,
            n_aggregations=1, **kw,
        )

    def test_selection_roundtrip(self):
        res = self._result(
            selected_strategy="SRA",
            strategy_ranking={"SRA": 1.25, "FRA": 2.5, "DA": 4.0,
                              "HYBRID": 4.5},
        )
        back = result_from_dict(json.loads(json.dumps(result_to_dict(res))))
        assert back.selected_strategy == "SRA"
        assert back.strategy_ranking == res.strategy_ranking
        # rank order survives the wire (dict order is part of the payload)
        assert list(back.strategy_ranking) == ["SRA", "FRA", "DA", "HYBRID"]

    def test_fixed_strategy_payload_omits_selection(self):
        """Explicit-strategy results carry no selection fields -- the
        payload stays byte-compatible with pre-auto servers."""
        payload = json.loads(json.dumps(result_to_dict(self._result())))
        assert "selected_strategy" not in payload
        assert "strategy_ranking" not in payload
        back = result_from_dict(payload)
        assert back.selected_strategy == ""
        assert back.strategy_ranking == {}

    def test_auto_query_roundtrip(self):
        q = make_query()
        q.strategy = "AUTO"
        back = query_from_dict(json.loads(json.dumps(query_to_dict(q))))
        assert back.strategy == "AUTO"

    def test_missing_strategy_defaults_to_auto(self):
        """A client that omits strategy gets automatic selection."""
        payload = json.loads(json.dumps(query_to_dict(make_query())))
        del payload["strategy"]
        assert query_from_dict(payload).strategy == "AUTO"

    def test_auto_end_to_end_on_the_wire(self, rng):
        adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
        in_space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
        coords = rng.uniform(0, 10, size=(200, 2))
        values = rng.integers(1, 20, size=200).astype(float)
        adr.load("sensors", in_space, hilbert_partition(coords, values, 20))
        out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
        grid = OutputGrid(out_space, (6, 6), (3, 3))
        mapping = GridMapping(in_space, out_space, (6, 6))
        q = RangeQuery("sensors", Rect((0, 0), (10, 10)), mapping, grid,
                       aggregation="mean", strategy="AUTO")

        server_query = query_from_dict(json.loads(json.dumps(query_to_dict(q))))
        result = adr.execute(server_query)
        back = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert back.selected_strategy == result.strategy
        assert back.strategy_ranking == result.strategy_ranking
        assert set(back.strategy_ranking) == {"FRA", "SRA", "DA", "HYBRID"}


class TestSharedCountersOnTheWire:
    def _result(self, **kw):
        from repro.runtime.engine import QueryResult

        return QueryResult(
            strategy="FRA",
            output_ids=np.array([0]),
            chunk_values=[np.array([[2.0]])],
            n_tiles=1, n_reads=4, bytes_read=40, n_combines=0,
            n_aggregations=4, **kw,
        )

    def test_shared_counters_roundtrip(self):
        res = self._result(shared_reads=3, shared_bytes=1536)
        back = result_from_dict(json.loads(json.dumps(result_to_dict(res))))
        assert back.shared_reads == 3
        assert back.shared_bytes == 1536

    def test_unshared_result_payload_has_no_shared_keys(self):
        """Back-compat: isolated executions encode byte-identically to
        pre-sharing payloads."""
        payload = result_to_dict(self._result())
        assert "shared_reads" not in payload
        assert "shared_bytes" not in payload

    def test_old_payload_decodes_with_zero_shared(self):
        payload = json.loads(json.dumps(result_to_dict(self._result())))
        back = result_from_dict(payload)
        assert back.shared_reads == 0 and back.shared_bytes == 0


class TestErrorEncoding:
    def test_exception_renders_as_typename_message(self):
        from repro.frontend.protocol import error_to_dict

        payload = error_to_dict("bad_request", KeyError("absent"))
        assert payload == {
            "ok": False,
            "code": "bad_request",
            "error": "KeyError: 'absent'",
        }

    def test_plain_text_error(self):
        from repro.frontend.protocol import error_to_dict

        payload = error_to_dict("overloaded", "pending queue full")
        assert payload["code"] == "overloaded"
        assert payload["error"] == "pending queue full"

    def test_unknown_code_rejected(self):
        from repro.frontend.protocol import ERROR_CODES, error_to_dict

        assert set(ERROR_CODES) == {
            "bad_request", "overloaded", "internal",
            "shard_unavailable", "deadline_exceeded",
        }
        with pytest.raises(ValueError, match="unknown error code"):
            error_to_dict("teapot", "x")


class TestFraming:
    """Edge cases of the length-prefixed frame codec: every corruption
    mode must surface as a loud ProtocolError, never a hang, a short
    result, or a bare struct/json error."""

    def roundtrip(self, message):
        import io

        from repro.frontend.protocol import read_frame, write_frame

        buf = io.BytesIO()
        write_frame(buf, message)
        buf.seek(0)
        return read_frame(buf)

    def test_roundtrip(self):
        message = {"op": "query", "nested": {"xs": [1, 2.5, None, "s"]}}
        assert self.roundtrip(message) == message

    def test_clean_eof_is_none(self):
        import io

        from repro.frontend.protocol import read_frame

        assert read_frame(io.BytesIO(b"")) is None

    def test_truncated_header(self):
        import io

        from repro.frontend.protocol import read_frame

        with pytest.raises(ProtocolError, match="truncated frame header"):
            read_frame(io.BytesIO(b"\x00\x00"))

    def test_oversized_declared_length(self):
        import io
        import struct

        from repro.frontend.protocol import MAX_FRAME_BYTES, read_frame

        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME_BYTES"):
            read_frame(io.BytesIO(header))

    def test_torn_payload(self):
        import io
        import struct

        from repro.frontend.protocol import read_frame

        data = struct.pack(">I", 10) + b"{}"
        with pytest.raises(ProtocolError, match="torn frame: got 2 of 10"):
            read_frame(io.BytesIO(data))

    def test_non_json_payload(self):
        import io
        import struct

        from repro.frontend.protocol import read_frame

        data = struct.pack(">I", 3) + b"\xff\xfe\xfd"
        with pytest.raises(ProtocolError, match="bad frame payload"):
            read_frame(io.BytesIO(data))

    def test_prefix_bytes_count_toward_header(self):
        """The server's one-byte legacy sniff hands its byte back via
        ``prefix``; the frame must decode exactly as if unread."""
        import io

        from repro.frontend.protocol import read_frame, write_frame

        buf = io.BytesIO()
        write_frame(buf, {"op": "ping"})
        raw = buf.getvalue()
        assert read_frame(io.BytesIO(raw[1:]), prefix=raw[:1]) == {"op": "ping"}

    def test_oversized_outgoing_payload_refused(self):
        import io

        from repro.frontend.protocol import MAX_FRAME_BYTES, write_frame

        big = {"blob": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME_BYTES"):
            write_frame(io.BytesIO(), big)


class TestRobustnessErrorCodes:
    """Round-trips for the shard-era error codes and their details."""

    def test_shard_unavailable_roundtrip(self):
        from repro.frontend.protocol import error_to_dict

        payload = error_to_dict(
            "shard_unavailable",
            "server is draining and admits no new queries",
        )
        assert json.loads(json.dumps(payload)) == payload
        assert payload["code"] == "shard_unavailable"
        assert "details" not in payload

    def test_deadline_exceeded_roundtrip(self):
        from repro.frontend.protocol import DeadlineExceededError, error_to_dict

        e = DeadlineExceededError("deadline of 1.5s expired")
        payload = error_to_dict("deadline_exceeded", e)
        assert payload["error"] == (
            "DeadlineExceededError: deadline of 1.5s expired"
        )
        # DeadlineExceededError is a TimeoutError, hence an OSError:
        # retry policies treat it like any transient I/O failure.
        assert isinstance(e, TimeoutError) and isinstance(e, OSError)

    def test_explicit_details_travel(self):
        from repro.frontend.protocol import error_to_dict

        payload = error_to_dict(
            "overloaded", "queue full",
            details={"queue_depth": 7, "retry_after_s": 0.25},
        )
        assert payload["details"] == {"queue_depth": 7, "retry_after_s": 0.25}
        assert json.loads(json.dumps(payload)) == payload

    def test_wire_details_attribute_used_when_present(self):
        from repro.frontend.protocol import error_to_dict
        from repro.frontend.queryservice import ServiceOverloadedError

        e = ServiceOverloadedError(
            "pending queue full", queue_depth=5, retry_after_s=0.1
        )
        payload = error_to_dict("overloaded", e)
        assert payload["details"] == {"queue_depth": 5, "retry_after_s": 0.1}


class TestValueComponentsOnTheWire:
    def test_spec_instance_components_survive_roundtrip(self):
        """A query built with a multi-component spec instance leaves
        the ``value_components`` *field* at its default; the encoder
        must ship the spec's component count, not the field's."""
        from repro.aggregation.functions import MinAggregation

        q = make_query()
        from dataclasses import replace

        q = replace(q, aggregation=MinAggregation(2), value_components=1)
        back = query_from_dict(query_to_dict(q))
        assert back.aggregation == "min"
        assert back.value_components == 2
        assert back.spec().value_components == 2
