"""Tests for ADR batch-query submission."""

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.machine.config import MachineConfig
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import MB


@pytest.fixture
def setup(rng):
    adr = ADR(machine=MachineConfig(n_procs=3, memory_per_proc=MB))
    space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
    coords = rng.uniform(0, 10, size=(600, 2))
    values = rng.integers(1, 50, size=600).astype(float)
    chunks = hilbert_partition(coords, values, items_per_chunk=20)
    adr.load("d", space, chunks)
    out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(out_space, (8, 8), (4, 4))
    mapping = GridMapping(space, out_space, (8, 8))

    def query(region):
        return RangeQuery("d", region, mapping, grid, aggregation="sum")

    return adr, query


class TestADRBatch:
    def test_batch_results_equal_individual(self, setup):
        adr, query = setup
        queries = [
            query(Rect((0, 0), (6, 6))),
            query(Rect((4, 4), (10, 10))),
            query(Rect((0, 4), (6, 10))),
        ]
        batch_results = adr.execute_batch(queries, strategy="DA")
        for q, br in zip(queries, batch_results):
            solo = adr.execute(q)
            assert br.output_ids.tolist() == solo.output_ids.tolist()
            for a, b in zip(br.chunk_values, solo.chunk_values):
                np.testing.assert_allclose(a, b, equal_nan=True)

    def test_batch_plan_orders_by_overlap(self, setup):
        adr, query = setup
        queries = [
            query(Rect((0, 0), (5, 5))),       # A
            query(Rect((5.2, 5.2), (10, 10))),  # far from A
            query(Rect((1, 1), (5.5, 5.5))),    # overlaps A heavily
        ]
        batch = adr.plan_batch(queries)
        pos = {q: i for i, q in enumerate(batch.order)}
        assert abs(pos[0] - pos[2]) == 1

    def test_batch_requires_single_dataset(self, setup):
        adr, query = setup
        q1 = query(Rect((0, 0), (5, 5)))
        q2 = query(Rect((0, 0), (5, 5)))
        q2.dataset = "other"
        with pytest.raises(ValueError, match="one dataset"):
            adr.plan_batch([q1, q2])

    def test_empty_batch(self, setup):
        adr, _ = setup
        with pytest.raises(ValueError):
            adr.plan_batch([])

    def test_batch_summary(self, setup):
        adr, query = setup
        batch = adr.plan_batch([query(Rect((0, 0), (8, 8))), query(Rect((2, 2), (10, 10)))])
        assert "shareable" in batch.summary()
