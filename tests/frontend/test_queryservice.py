"""Tests for the concurrent query service (admission, batching,
functional scan sharing, bit-identical results under concurrency)."""

import threading
import time

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.partition import hilbert_partition
from repro.faults import FaultInjector, FaultPlan, FaultyChunkStore
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.frontend.queryservice import (
    QueryService,
    ServiceClosedError,
    ServiceOverloadedError,
    ServicePolicy,
)
from repro.machine.config import MachineConfig
from repro.space.attribute_space import AttributeSpace
from repro.store.chunk_store import ChunkStore, MemoryChunkStore
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import MB

SEED = 311  # deterministic dataset per module


def build_adr(store=None, cache_bytes=64 * MB):
    rng = np.random.default_rng(SEED)
    adr = ADR(
        machine=MachineConfig(n_procs=2, memory_per_proc=MB),
        store=store,
        cache_bytes=cache_bytes,
    )
    space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
    coords = rng.uniform(0, 10, size=(500, 2))
    values = rng.integers(1, 40, size=500).astype(float)
    adr.load("sensors", space, hilbert_partition(coords, values, 20))
    return adr, space


def make_query(space, region, strategy="FRA", **kw):
    out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(out_space, (6, 6), (3, 3))
    mapping = GridMapping(space, out_space, (6, 6))
    return RangeQuery(
        "sensors", region, mapping, grid,
        aggregation="sum", strategy=strategy, **kw,
    )


#: A mixed workload: heavy overlap (full/NE/inner), disjoint corners,
#: a different strategy, and a value predicate.
def workload(space):
    return [
        make_query(space, Rect((0, 0), (10, 10))),
        make_query(space, Rect((4, 4), (10, 10))),
        make_query(space, Rect((3, 3), (8, 8)), strategy="DA"),
        make_query(space, Rect((0, 0), (4, 4))),
        make_query(space, Rect((6, 0), (10, 4))),
        make_query(space, Rect((1, 1), (9, 9)), where={0: (None, 20.0)}),
    ]


def assert_identical(shared, solo, label=""):
    """Shared-batch result must be bit-identical to isolated execution
    in everything except the documented shared-read / cache fields."""
    assert shared.output_ids.tolist() == solo.output_ids.tolist(), label
    for o, a, b in zip(shared.output_ids, shared.chunk_values, solo.chunk_values):
        assert np.array_equal(a, b, equal_nan=True), f"{label} chunk {int(o)}"
    for counter in ("strategy", "n_tiles", "n_reads", "bytes_read",
                    "n_combines", "n_aggregations", "chunks_pruned",
                    "bytes_pruned", "completeness"):
        assert getattr(shared, counter) == getattr(solo, counter), (
            f"{label} counter {counter}"
        )
    assert shared.chunk_errors == solo.chunk_errors, label


class GateStore(ChunkStore):
    """Store whose reads block until the gate opens (delegates rest)."""

    def __init__(self, inner):
        self.inner = inner
        self.gate = threading.Event()

    def read_chunk(self, dataset, chunk_id):
        assert self.gate.wait(timeout=30), "gate never opened"
        return self.inner.read_chunk(dataset, chunk_id)

    def write_chunk(self, dataset, chunk, node, disk):
        self.inner.write_chunk(dataset, chunk, node, disk)

    def delete_dataset(self, dataset):
        self.inner.delete_dataset(dataset)

    def placement(self, dataset, chunk_id):
        return self.inner.placement(dataset, chunk_id)

    def chunk_ids(self, dataset):
        return self.inner.chunk_ids(dataset)


class TestAdmissionControl:
    def test_overload_rejects_loudly(self):
        gate_inner = MemoryChunkStore()
        gate = GateStore(gate_inner)
        adr, space = build_adr(store=gate)
        q = make_query(space, Rect((0, 0), (10, 10)))
        policy = ServicePolicy(max_queue=2, max_inflight=1, batch_max=1)
        with QueryService(adr, policy) as service:
            blocked = service.submit(q)  # worker picks this up, blocks on read
            deadline = time.monotonic() + 10
            while service.stats()["in_flight"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            t1, t2 = service.submit(q), service.submit(q)  # fills the queue
            with pytest.raises(ServiceOverloadedError, match="queue full"):
                service.submit(q)
            assert service.stats()["rejected"] == 1
            gate.gate.set()
            for t in (blocked, t1, t2):
                assert t.result(timeout=30).n_reads > 0
        assert service.stats()["completed"] == 3

    def test_closed_service_rejects(self):
        adr, space = build_adr()
        service = QueryService(adr)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(make_query(space, Rect((0, 0), (10, 10))))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ServicePolicy(max_queue=0)
        with pytest.raises(ValueError):
            ServicePolicy(max_inflight=0)
        with pytest.raises(ValueError):
            ServicePolicy(batch_window=-1)


class TestBatchingScheduler:
    def _run_backlogged(self, queries, policy):
        """Submit *queries* against a gated store so they all queue
        behind one blocked warm-up query, then release the gate --
        batch formation is deterministic (pure backlog, no windowing)."""
        gate = GateStore(MemoryChunkStore())
        adr, space = build_adr(store=gate)
        tickets = []
        with QueryService(adr, policy) as service:
            warmup = service.submit(make_query(space, Rect((0, 0), (1.5, 1.5))))
            deadline = time.monotonic() + 10
            while service.stats()["in_flight"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            tickets = [service.submit(q) for q in queries]
            gate.gate.set()
            warmup.result(timeout=30)
            results = [t.result(timeout=30) for t in tickets]
        return tickets, results, service

    def test_overlapping_queries_scheduled_adjacent(self):
        _, space = build_adr()
        queries = [
            make_query(space, Rect((0, 0), (5, 5))),       # A
            make_query(space, Rect((5.2, 5.2), (10, 10))),  # far from A
            make_query(space, Rect((1, 1), (5.5, 5.5))),    # overlaps A heavily
        ]
        policy = ServicePolicy(max_inflight=1, batch_max=8, batch_window=0.5)
        tickets, _, service = self._run_backlogged(queries, policy)
        infos = [t.service_info for t in tickets]
        assert all(i["batch_size"] == 3 for i in infos)
        assert abs(infos[0]["batch_pos"] - infos[2]["batch_pos"]) == 1
        assert service.stats()["batches"] >= 1

    def test_batch_max_caps_batch_size(self):
        _, space = build_adr()
        queries = [make_query(space, Rect((0, 0), (10, 10))) for _ in range(5)]
        policy = ServicePolicy(max_inflight=1, batch_max=2, batch_window=0.5)
        tickets, _, _ = self._run_backlogged(queries, policy)
        assert max(t.service_info["batch_size"] for t in tickets) <= 2

    def test_share_scans_off_disables_batching(self):
        _, space = build_adr()
        queries = [make_query(space, Rect((0, 0), (10, 10))) for _ in range(3)]
        policy = ServicePolicy(
            max_inflight=1, batch_max=8, batch_window=0.5, share_scans=False
        )
        tickets, results, _ = self._run_backlogged(queries, policy)
        assert all(t.service_info["batch_size"] == 1 for t in tickets)

    def test_queue_wait_reported(self):
        _, space = build_adr()
        policy = ServicePolicy(max_inflight=1)
        tickets, _, _ = self._run_backlogged(
            [make_query(space, Rect((0, 0), (10, 10)))], policy
        )
        assert tickets[0].service_info["queue_wait_s"] >= 0.0


class TestScanSharing:
    def test_batched_duplicates_share_reads(self):
        adr, space = build_adr()
        q = make_query(space, Rect((0, 0), (10, 10)))
        policy = ServicePolicy(max_inflight=1, batch_max=4, batch_window=0.5)
        with QueryService(adr, policy) as service:
            tickets = [service.submit(q) for _ in range(3)]
            results = [t.result(timeout=30) for t in tickets]
        # Identical queries in one batch: every successor read is shared.
        shared = sorted(r.shared_reads for r in results)
        assert shared[-1] == results[0].n_reads
        assert sum(r.shared_reads for r in results) >= results[0].n_reads
        stats = service.stats()
        assert stats["shared_reads"] == sum(r.shared_reads for r in results)
        assert stats["shared_bytes"] == sum(r.shared_bytes for r in results)

    def test_pinning_shares_despite_tiny_cache(self):
        """With a 1-byte budget the plain LRU caches nothing -- only
        batch pinning can retain the overlap set, so shared reads prove
        the pin/unpin path works."""
        adr, space = build_adr(cache_bytes=1)
        q = make_query(space, Rect((0, 0), (10, 10)))
        policy = ServicePolicy(max_inflight=1, batch_max=2, batch_window=0.5)
        with QueryService(adr, policy) as service:
            tickets = [service.submit(q) for _ in range(2)]
            results = [t.result(timeout=30) for t in tickets]
        assert max(r.shared_reads for r in results) == results[0].n_reads
        # pins released: the over-budget entries are evictable again
        assert adr.store.pinned_count == 0

    def test_results_bit_identical_to_isolated(self):
        adr, space = build_adr()
        queries = workload(space)
        policy = ServicePolicy(max_inflight=3, batch_max=8, batch_window=0.05)
        with QueryService(adr, policy) as service:
            tickets = [service.submit(q) for q in queries]
            shared_results = [t.result(timeout=60) for t in tickets]
        solo_adr, _ = build_adr()  # fresh instance, cold cache
        for i, (q, shared) in enumerate(zip(queries, shared_results)):
            assert_identical(shared, solo_adr.execute(q), label=f"query {i}")

    def test_degraded_results_bit_identical_to_isolated(self):
        """on_error='degrade' under shared execution reports the same
        chunk_errors and completeness as an isolated run."""

        def faulty_store():
            return FaultyChunkStore(
                MemoryChunkStore(),
                FaultInjector(FaultPlan.corrupt_chunk(3, dataset="sensors")),
            )

        adr, space = build_adr(store=faulty_store())
        queries = [
            make_query(space, Rect((0, 0), (10, 10)), on_error="degrade"),
            make_query(space, Rect((0, 0), (6, 6)), on_error="degrade"),
            make_query(space, Rect((2, 2), (10, 10)), on_error="degrade"),
        ]
        policy = ServicePolicy(max_inflight=2, batch_max=4, batch_window=0.05)
        with QueryService(adr, policy) as service:
            tickets = [service.submit(q) for q in queries]
            shared_results = [t.result(timeout=60) for t in tickets]
        solo_adr, _ = build_adr(store=faulty_store())
        hit_fault = 0
        for i, (q, shared) in enumerate(zip(queries, shared_results)):
            solo = solo_adr.execute(q)
            assert_identical(shared, solo, label=f"degraded query {i}")
            hit_fault += bool(shared.chunk_errors)
        assert hit_fault > 0  # the fault actually fired somewhere


class TestErrors:
    def test_bad_query_fails_its_ticket_only(self):
        adr, space = build_adr()
        good = make_query(space, Rect((0, 0), (10, 10)))
        bad = make_query(space, Rect((0, 0), (10, 10)))
        bad.dataset = "absent"
        policy = ServicePolicy(max_inflight=1, batch_max=4, batch_window=0.2)
        with QueryService(adr, policy) as service:
            tg, tb = service.submit(good), service.submit(bad)
            with pytest.raises(KeyError):
                tb.result(timeout=30)
            assert tg.result(timeout=30).n_reads > 0
        stats = service.stats()
        assert stats["failed"] == 1 and stats["completed"] == 1

    def test_ticket_timeout(self):
        gate = GateStore(MemoryChunkStore())
        adr, space = build_adr(store=gate)
        with QueryService(adr, ServicePolicy(max_inflight=1)) as service:
            ticket = service.submit(make_query(space, Rect((0, 0), (10, 10))))
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.05)
            gate.gate.set()
            assert ticket.result(timeout=30).n_reads > 0


class TestConcurrentHammer:
    def test_many_threads_bit_identical(self):
        """N threads hammering the service with overlapping and
        disjoint queries: every result matches the same query run
        alone on a fresh ADR."""
        adr, space = build_adr()
        queries = workload(space)
        solo_adr, _ = build_adr()
        expected = [solo_adr.execute(q) for q in queries]

        policy = ServicePolicy(max_queue=256, max_inflight=4, batch_max=4)
        failures = []
        lock = threading.Lock()

        def hammer(tid):
            try:
                for round_no in range(3):
                    idx = (tid + round_no) % len(queries)
                    result = adr_service.execute(queries[idx], timeout=120)
                    assert_identical(
                        result, expected[idx], label=f"t{tid} r{round_no} q{idx}"
                    )
            except BaseException as e:  # surface in the main thread
                with lock:
                    failures.append(e)

        with QueryService(adr, policy) as adr_service:
            threads = [
                threading.Thread(target=hammer, args=(t,)) for t in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert not failures, failures[0]
        assert adr_service.stats()["completed"] == 24


class TestOverloadDetails:
    def test_rejection_carries_backoff_hint(self):
        gate = GateStore(MemoryChunkStore())
        adr, space = build_adr(store=gate)
        q = make_query(space, Rect((0, 0), (10, 10)))
        policy = ServicePolicy(max_queue=1, max_inflight=1, batch_max=1)
        with QueryService(adr, policy) as service:
            blocked = service.submit(q)
            deadline = time.monotonic() + 10
            while service.stats()["in_flight"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            service.submit(q)  # fills the queue
            with pytest.raises(ServiceOverloadedError) as exc:
                service.submit(q)
            gate.gate.set()
            blocked.result(timeout=30)
        e = exc.value
        assert e.queue_depth == 1
        assert e.retry_after_s > 0
        # The wire encoding ships both as machine-readable details.
        assert e.wire_details == {
            "queue_depth": 1,
            "retry_after_s": e.retry_after_s,
        }

    def test_hint_grows_with_backlog(self):
        a = ServiceOverloadedError("full", queue_depth=1, retry_after_s=0.1)
        b = ServiceOverloadedError("full", queue_depth=9, retry_after_s=0.5)
        assert b.wire_details["retry_after_s"] > a.wire_details["retry_after_s"]


class TestSchedulerFailure:
    def test_batch_scheduler_error_resolves_every_ticket(self, monkeypatch):
        """A failure *between* planning and execution (ordering, shared
        keys, pinning) must fail every ticket in the batch -- an
        unresolved ticket is a client hung in result() forever -- and
        leave the service serving."""
        gate = GateStore(MemoryChunkStore())
        adr, space = build_adr(store=gate)
        q = make_query(space, Rect((0, 0), (10, 10)))
        policy = ServicePolicy(
            max_queue=8, max_inflight=1, batch_max=4, batch_window=0.05
        )
        monkeypatch.setattr(
            "repro.frontend.queryservice.order_for_sharing",
            lambda plans: (_ for _ in ()).throw(RuntimeError("scheduler broke")),
        )
        with QueryService(adr, policy) as service:
            blocked = service.submit(q)  # solo batch: never ordered
            deadline = time.monotonic() + 10
            while service.stats()["in_flight"] < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            t1, t2 = service.submit(q), service.submit(q)
            gate.gate.set()
            assert blocked.result(timeout=30).n_reads > 0
            for t in (t1, t2):
                with pytest.raises(RuntimeError, match="scheduler broke"):
                    t.result(timeout=30)
            # The worker survived: in-flight drained, new queries run.
            stats = service.stats()
            assert stats["failed"] == 2
            follow_up = service.submit(q)
            assert follow_up.result(timeout=30).n_reads > 0
        stats = service.stats()
        assert stats["in_flight"] == 0
        assert stats["queue_depth"] == 0


class TestAutoStrategyAndTelemetry:
    def test_auto_query_through_service(self):
        adr, space = build_adr()
        q = make_query(space, Rect((0, 0), (10, 10)), strategy="AUTO")
        with QueryService(adr, ServicePolicy()) as service:
            ticket = service.submit(q)
            result = ticket.result(timeout=60)
        assert result.selected_strategy == result.strategy
        assert result.selected_strategy in {"FRA", "SRA", "DA", "HYBRID"}
        assert ticket.service_info["selected_strategy"] == result.strategy
        # ...and it matches the same query executed alone
        solo_adr, _ = build_adr()
        assert_identical(
            result, solo_adr.execute(q), label="auto through service"
        )

    def test_telemetry_recorded_per_completed_query(self, tmp_path):
        from repro.planner.telemetry import CANONICAL_PHASES, TelemetryLog

        adr, space = build_adr()
        log = TelemetryLog(tmp_path / "telemetry.jsonl")
        queries = workload(space)
        with QueryService(adr, ServicePolicy(), telemetry=log) as service:
            for t in [service.submit(q) for q in queries]:
                t.result(timeout=120)
        runs = log.load()
        assert len(runs) == len(queries)
        for run in runs:
            assert run.source == "measured"
            assert set(run.phase_times) <= set(CANONICAL_PHASES)
            assert run.total_time > 0
            assert run.n_procs == 2

    def test_no_telemetry_log_means_no_recording(self, tmp_path):
        adr, space = build_adr()
        q = make_query(space, Rect((0, 0), (10, 10)))
        with QueryService(adr, ServicePolicy()) as service:
            service.execute(q, timeout=60)
        assert not (tmp_path / "telemetry.jsonl").exists()

    def test_degraded_queries_not_recorded(self, tmp_path):
        """Telemetry feeds calibration; a degraded run's phase times
        describe a partial query and would poison the fit."""
        from repro.planner.telemetry import TelemetryLog

        plan = FaultPlan.corrupt_chunk(chunk_id=0, dataset="sensors", times=1)
        store = FaultyChunkStore(MemoryChunkStore(), FaultInjector(plan))
        adr, space = build_adr(store=store)
        log = TelemetryLog(tmp_path / "telemetry.jsonl")
        degraded = make_query(
            space, Rect((0, 0), (10, 10)), on_error="degrade"
        )
        clean = make_query(space, Rect((0, 0), (10, 10)))
        with QueryService(adr, ServicePolicy(), telemetry=log) as service:
            bad = service.execute(degraded, timeout=60)
            service.execute(clean, timeout=60)
        assert bad.completeness < 1.0
        runs = log.load()
        assert len(runs) == 1  # only the clean run was recorded
