"""Tests for item-level range filtering and output write-back."""

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.machine.config import MachineConfig
from repro.runtime.serial import execute_serial, filter_items
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import MB


def one_chunk_instance(rng):
    """An ADR instance whose single chunk straddles the query boundary."""
    adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
    space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
    # 100 items spanning the whole space, deliberately in ONE chunk so
    # any partial query intersects it.
    coords = rng.uniform(0, 10, size=(100, 2))
    values = rng.integers(1, 9, size=100).astype(float)
    adr.load("d", space, [Chunk.from_items(0, coords, values)])
    out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    grid = OutputGrid(out_space, (4, 4), (2, 2))
    mapping = GridMapping(space, out_space, (4, 4))
    return adr, coords, values, mapping, grid


class TestItemLevelFiltering:
    def test_filter_items(self, rng):
        coords = rng.uniform(0, 10, size=(50, 2))
        chunk = Chunk.from_items(0, coords, np.zeros(50))
        idx = filter_items(chunk, Rect((0, 0), (5, 5)))
        expected = np.flatnonzero((coords <= 5).all(axis=1))
        assert idx.tolist() == expected.tolist()

    def test_filter_none_keeps_all(self, rng):
        coords = rng.uniform(0, 10, size=(10, 2))
        chunk = Chunk.from_items(0, coords, np.zeros(10))
        assert len(filter_items(chunk, None)) == 10

    def test_partial_query_excludes_out_of_box_items(self, rng):
        """Only items inside the box contribute -- even when their
        chunk is retrieved (it straddles the boundary)."""
        adr, coords, values, mapping, grid = one_chunk_instance(rng)
        region = Rect((0, 0), (10, 5))  # lower half in y
        q = RangeQuery("d", region, mapping, grid, aggregation="sum", strategy="FRA")
        result = adr.execute(q)
        # manual: only items with y <= 5, binned at 4x4
        inside = coords[:, 1] <= 5
        cells = np.clip((coords[inside] * 0.4).astype(int), 0, 3)
        vals = values[inside]
        total_expected = vals.sum()
        total_measured = sum(np.nansum(v) for v in result.chunk_values)
        assert total_measured == pytest.approx(total_expected)

    def test_serial_region_agrees_with_parallel(self, rng):
        adr, coords, values, mapping, grid = one_chunk_instance(rng)
        region = Rect((2, 2), (8, 8))
        q = RangeQuery("d", region, mapping, grid, aggregation="sum", strategy="DA")
        result = adr.execute(q)
        chunk = adr.store.read_chunk("d", 0)
        serial = execute_serial(
            [chunk], mapping, grid, q.spec(),
            output_ids=result.output_ids, region=region,
        )
        for o, v in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(v, serial[int(o)], equal_nan=True)


class TestWriteBack:
    def test_result_becomes_queryable_dataset(self, rng):
        adr, coords, values, mapping, grid = one_chunk_instance(rng)
        q = RangeQuery("d", Rect((0, 0), (10, 10)), mapping, grid,
                       aggregation="mean", strategy="FRA")
        result = adr.execute(q, store_as="composite")
        assert "composite" in adr.catalog
        ds = adr.dataset("composite")
        assert ds.chunks.placed
        assert adr.index("composite").n_entries == len(result.output_ids)

    def test_stored_values_roundtrip(self, rng):
        adr, coords, values, mapping, grid = one_chunk_instance(rng)
        q = RangeQuery("d", Rect((0, 0), (10, 10)), mapping, grid,
                       aggregation="mean", strategy="FRA")
        result = adr.execute(q, store_as="composite")
        # read back every stored chunk; values must equal the result
        for new_id, (out_id, vals) in enumerate(
            zip(result.output_ids, result.chunk_values)
        ):
            chunk = adr.store.read_chunk("composite", new_id)
            np.testing.assert_allclose(chunk.values, vals, equal_nan=True)
            # coordinates are cell centres inside the output chunk MBR
            assert chunk.n_items == grid.cells_in_chunk(int(out_id))

    def test_second_level_query(self, rng):
        """Query the written-back composite: the paper's stored-output
        path, exercised end to end."""
        adr, coords, values, mapping, grid = one_chunk_instance(rng)
        q = RangeQuery("d", Rect((0, 0), (10, 10)), mapping, grid,
                       aggregation="sum", strategy="FRA")
        first = adr.execute(q, store_as="level1")
        out_space = grid.space
        grid2 = OutputGrid(out_space, (2, 2), (1, 1))
        from repro.space.mapping import IdentityMapping

        mapping2 = GridMapping(out_space, out_space, (2, 2))
        q2 = RangeQuery("level1", Rect((0, 0), (1, 1)), mapping2, grid2,
                        aggregation="sum", strategy="DA")
        second = adr.execute(q2)
        # total is conserved through both levels
        total0 = values.sum()
        total2 = sum(np.nansum(v) for v in second.chunk_values)
        assert total2 == pytest.approx(total0)
