"""Shared helpers for the test suite (import as `from helpers import ...`)."""

from __future__ import annotations

import numpy as np
from repro.aggregation.functions import MeanAggregation
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.problem import PlanningProblem
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping
from repro.util.geometry import Rect
from repro.util.units import KB, MB


def random_rects(rng: np.random.Generator, n: int, ndim: int, extent: float = 100.0):
    """Packed (los, his) random rectangle arrays."""
    los = rng.uniform(0, extent * 0.9, size=(n, ndim))
    sizes = rng.uniform(0, extent * 0.1, size=(n, ndim))
    return los, los + sizes


def make_chunkset(
    rng: np.random.Generator,
    n: int,
    ndim: int = 2,
    nbytes: int = 100 * KB,
    placed_on: int | None = None,
) -> ChunkSet:
    los, his = random_rects(rng, n, ndim)
    cs = ChunkSet(los, his, np.full(n, nbytes, dtype=np.int64))
    if placed_on is not None:
        node = rng.integers(0, placed_on, size=n).astype(np.int32)
        disk = np.zeros(n, dtype=np.int32)
        cs = cs.with_placement(node, disk)
    return cs


def make_problem(
    rng: np.random.Generator,
    n_procs: int = 4,
    n_in: int = 60,
    n_out: int = 12,
    memory: int = 1 * MB,
    fan_out: int = 2,
    acc_factor: float = 2.0,
) -> PlanningProblem:
    """A small random planning problem with a synthetic chunk graph."""
    inputs = make_chunkset(rng, n_in, 2, nbytes=64 * KB, placed_on=n_procs)
    outputs = make_chunkset(rng, n_out, 2, nbytes=32 * KB, placed_on=n_procs)
    outs_per_in = [
        rng.choice(n_out, size=min(n_out, max(1, int(rng.poisson(fan_out)))), replace=False)
        for _ in range(n_in)
    ]
    graph = ChunkGraph.from_lists(n_in, n_out, outs_per_in)
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=(outputs.nbytes * acc_factor).astype(np.int64),
    )


def make_functional_setup(
    rng: np.random.Generator,
    n_items: int = 400,
    items_per_chunk: int = 20,
    grid_cells: tuple[int, int] = (12, 12),
    chunk_cells: tuple[int, int] = (3, 3),
    value_components: int = 1,
    footprint: tuple[float, float] | None = None,
):
    """A small real-data workload: chunks + mapping + grid."""
    from repro.dataset.partition import hilbert_partition

    in_space = AttributeSpace.regular("in", ("x", "y"), (0, 0), (10, 10))
    out_space = AttributeSpace.regular("out", ("u", "v"), (0, 0), (1, 1))
    coords = rng.uniform(0, 10, size=(n_items, 2))
    values = rng.integers(1, 100, size=(n_items, value_components)).astype(float)
    chunks = hilbert_partition(coords, values, items_per_chunk)
    grid = OutputGrid(out_space, grid_cells, chunk_cells)
    mapping = GridMapping(in_space, out_space, grid_cells, footprint=footprint)
    return in_space, out_space, chunks, mapping, grid


SMALL_COSTS = ComputeCosts.from_ms(1, 5, 2, 1)


def small_machine(n_procs: int = 4, memory: int = 1 * MB) -> MachineConfig:
    return MachineConfig(n_procs=n_procs, memory_per_proc=memory)


def sub_problem(rng, global_ids, n_procs: int = 2, n_out: int = 4):
    """A query-restricted problem referencing dataset chunks by global
    id, with placement/geometry derived deterministically from the id
    (used by batch-planning tests)."""
    import numpy as np
    from repro.dataset.chunkset import ChunkSet
    from repro.dataset.graph import ChunkGraph
    from repro.planner.problem import PlanningProblem
    from repro.util.units import KB, MB

    global_ids = np.asarray(sorted(global_ids), dtype=np.int64)
    n_in = len(global_ids)
    los = np.stack((global_ids.astype(float), np.zeros(n_in)), axis=1)
    inputs = ChunkSet(
        los, los + 0.5,
        np.full(n_in, 64 * KB, dtype=np.int64),
        node=(global_ids % n_procs).astype(np.int32),
        disk=np.zeros(n_in, dtype=np.int32),
    )
    out_los = np.arange(n_out, dtype=float)[:, None] * np.ones(2)
    outputs = ChunkSet(
        out_los, out_los + 0.5,
        np.full(n_out, 16 * KB, dtype=np.int64),
        node=(np.arange(n_out) % n_procs).astype(np.int32),
        disk=np.zeros(n_out, dtype=np.int32),
    )
    edges_in = np.arange(n_in, dtype=np.int64)
    edges_out = (global_ids % n_out).astype(np.int64)
    graph = ChunkGraph(n_in, n_out, edges_in, edges_out)
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(8 * MB),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        input_global_ids=global_ids,
    )
