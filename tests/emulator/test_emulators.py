"""Tests for the SAT/WCS/VM application emulators against Table 1."""

import numpy as np
import pytest

from repro.emulator import EMULATORS, SATEmulator, VMEmulator, WCSEmulator
from repro.machine.presets import ibm_sp
from repro.util.units import GB, MB


@pytest.fixture(scope="module")
def scenarios():
    return {
        "SAT": SATEmulator().scenario(1, seed=1),
        "WCS": WCSEmulator().scenario(1, seed=1),
        "VM": VMEmulator().scenario(1, seed=1),
    }


class TestTable1Characteristics:
    """Published values: SAT 9K chunks / 1.6 GB / fan-in 161 / fan-out
    4.6; WCS 7.5K / 1.7 GB / 60 / 1.2; VM 4K / 1.5 GB / 16 / 1.0."""

    def test_sat(self, scenarios):
        sc = scenarios["SAT"]
        assert len(sc.inputs) == 9000
        assert abs(sc.input_bytes - 1.6 * GB) < 0.15 * GB
        assert sc.output_bytes == pytest.approx(25 * MB, rel=0.05)
        assert len(sc.outputs) == 256
        assert 4.0 <= sc.graph.avg_fan_out <= 5.2
        assert 130 <= sc.graph.avg_fan_in <= 200

    def test_wcs(self, scenarios):
        sc = scenarios["WCS"]
        assert len(sc.inputs) == 7500
        assert abs(sc.input_bytes - 1.7 * GB) < 0.2 * GB
        assert len(sc.outputs) == 150
        assert 1.1 <= sc.graph.avg_fan_out <= 1.3
        assert 55 <= sc.graph.avg_fan_in <= 70

    def test_vm(self, scenarios):
        sc = scenarios["VM"]
        assert len(sc.inputs) == 4096
        assert abs(sc.input_bytes - 1.5 * GB) < 0.15 * GB
        assert len(sc.outputs) == 256
        assert sc.graph.avg_fan_out == 1.0
        assert sc.graph.avg_fan_in == 16.0

    def test_costs_match_table1(self, scenarios):
        assert scenarios["SAT"].costs.reduction == pytest.approx(0.040)
        assert scenarios["WCS"].costs.reduction == pytest.approx(0.020)
        assert scenarios["VM"].costs.reduction == pytest.approx(0.005)

    def test_table1_row_smoke(self, scenarios):
        for sc in scenarios.values():
            row = sc.table1_row()
            assert sc.name in row


class TestScaling:
    """Scaled inputs keep fan-out fixed while fan-in grows linearly --
    the property the paper's scaled experiments rely on."""

    @pytest.mark.parametrize("name", ["SAT", "WCS", "VM"])
    def test_scale_grows_chunks_not_fan_out(self, name):
        emu = EMULATORS[name]() if name != "SAT" else SATEmulator(base_chunks=2000)
        s1 = emu.scenario(1, seed=2)
        s4 = emu.scenario(4, seed=2)
        assert len(s4.inputs) == 4 * len(s1.inputs)
        assert s4.graph.avg_fan_out == pytest.approx(s1.graph.avg_fan_out, rel=0.05)
        assert s4.graph.avg_fan_in == pytest.approx(4 * s1.graph.avg_fan_in, rel=0.1)
        # output untouched
        assert len(s4.outputs) == len(s1.outputs)

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            VMEmulator().scenario(0)


class TestSATIrregularity:
    def test_polar_skew_in_fan_in(self):
        """Output chunks in the polar rows receive far more input than
        equatorial ones (the paper's load-imbalance driver)."""
        sc = SATEmulator().scenario(1, seed=1)
        fan_in = sc.graph.fan_in
        # output ids are row-major over (lon, lat): lat index = id % 16
        lat_band = np.arange(256) % 16
        polar = fan_in[(lat_band <= 1) | (lat_band >= 14)].mean()
        equatorial = fan_in[(lat_band >= 7) & (lat_band <= 8)].mean()
        assert polar > 2.0 * equatorial

    def test_determinism_by_seed(self):
        a = SATEmulator(base_chunks=500).scenario(1, seed=9)
        b = SATEmulator(base_chunks=500).scenario(1, seed=9)
        assert np.array_equal(a.inputs.los, b.inputs.los)
        c = SATEmulator(base_chunks=500).scenario(1, seed=10)
        assert not np.array_equal(a.inputs.los, c.inputs.los)


class TestVMRegularity:
    def test_every_chunk_exactly_one_output(self):
        sc = VMEmulator().scenario(1, seed=0)
        assert (sc.graph.fan_out == 1).all()

    def test_alignment_required(self):
        with pytest.raises(ValueError, match="align"):
            VMEmulator(input_grid=(60, 64))


class TestProblemAssembly:
    def test_problem_is_placed_and_consistent(self):
        sc = WCSEmulator().scenario(1, seed=0)
        m = ibm_sp(8)
        prob = sc.problem(m)
        assert prob.inputs.placed and prob.outputs.placed
        assert prob.n_procs == 8
        assert prob.inputs.node.max() < 8
        # Hilbert declustering balances chunks across nodes
        counts = np.bincount(prob.inputs.node, minlength=8)
        assert counts.max() - counts.min() <= 1

    def test_describe_smoke(self):
        sc = VMEmulator().scenario(1, seed=0)
        prob = sc.problem(ibm_sp(4))
        assert "input chunks" in prob.describe()
