"""Tests for the generic parameterized emulator."""

import numpy as np
import pytest

from repro.dataset.profile import profile_graph
from repro.emulator.generic import GenericEmulator
from repro.machine.presets import ibm_sp
from repro.planner.strategies import plan_query
from repro.planner.validate import validate_plan


class TestParameters:
    @pytest.mark.parametrize("target", [1.0, 2.0, 4.0, 8.0])
    def test_fan_out_calibration(self, target):
        sc = GenericEmulator(base_chunks=3000, fan_out=target).scenario(1, seed=2)
        measured = sc.graph.avg_fan_out
        assert 0.8 * target <= measured <= 1.25 * target

    def test_hotspot_skews_fan_in(self):
        uni = GenericEmulator(base_chunks=2000, fan_out=2, spatial="uniform")
        hot = GenericEmulator(base_chunks=2000, fan_out=2, spatial="hotspot")
        s_uni = profile_graph(uni.scenario(1, seed=2).graph).fan_in_skew
        s_hot = profile_graph(hot.scenario(1, seed=2).graph).fan_in_skew
        assert s_hot > s_uni + 0.3

    def test_polar_widens_near_poles(self):
        sc = GenericEmulator(base_chunks=2000, fan_out=1, spatial="polar").scenario(1, seed=2)
        widths = sc.inputs.his[:, 0] - sc.inputs.los[:, 0]
        y = sc.inputs.centers[:, 1]
        polar = widths[(y < 0.1) | (y > 0.9)].mean()
        equatorial = widths[(y > 0.4) & (y < 0.6)].mean()
        assert polar > 1.5 * equatorial

    def test_scale_multiplies_chunks(self):
        emu = GenericEmulator(base_chunks=500)
        assert len(emu.scenario(3, seed=0).inputs) == 1500

    def test_validation(self):
        with pytest.raises(ValueError):
            GenericEmulator(base_chunks=0)
        with pytest.raises(ValueError):
            GenericEmulator(fan_out=0.5)
        with pytest.raises(ValueError):
            GenericEmulator(spatial="spiral")
        with pytest.raises(ValueError):
            GenericEmulator().scenario(0)

    def test_deterministic_by_seed(self):
        a = GenericEmulator(base_chunks=300).scenario(1, seed=5)
        b = GenericEmulator(base_chunks=300).scenario(1, seed=5)
        assert np.array_equal(a.inputs.los, b.inputs.los)


class TestPlannability:
    @pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA", "HYBRID"])
    def test_all_strategies_plan_and_validate(self, strategy):
        sc = GenericEmulator(base_chunks=1000, spatial="hotspot").scenario(1, seed=1)
        prob = sc.problem(ibm_sp(4))
        validate_plan(plan_query(prob, strategy))
