"""Tests for partial aggregation and the FRA global combine."""

import numpy as np
import pytest

from helpers import make_functional_setup
from repro.aggregation.functions import (
    MeanAggregation,
    MinAggregation,
    SumAggregation,
)
from repro.frontend.adr import ADR
from repro.frontend.query import RangeQuery
from repro.machine.config import MachineConfig
from repro.shard.partial import (
    EMPTY_SELECTION_MARK,
    PartialAggregationSpec,
    as_partial,
    combine_partials,
    empty_partial_result,
)
from repro.util.geometry import Rect
from repro.util.units import MB


def make_adr_and_query(rng, aggregation, value_components=1, strategy="FRA"):
    in_space, _, chunks, mapping, grid = make_functional_setup(
        rng, value_components=value_components
    )
    adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
    adr.load("d", in_space, chunks)
    query = RangeQuery(
        "d", Rect((0, 0), (10, 10)), mapping, grid,
        aggregation=aggregation, strategy=strategy,
    )
    return adr, query


class TestPartialAggregationSpec:
    def test_layout_is_the_inner_accumulator(self):
        inner = MeanAggregation(2)
        partial = PartialAggregationSpec(inner)
        assert partial.value_components == inner.value_components
        assert partial.acc_components == inner.acc_components  # noqa: ADR302 -- integer layout counts
        # The raw accumulator travels as the "output".
        assert partial.output_components == inner.acc_components  # noqa: ADR302 -- integer layout counts
        assert partial.acc_dtype == inner.acc_dtype  # noqa: ADR302 -- dtype identity, not values
        assert partial.idempotent == inner.idempotent

    def test_output_is_a_copy_of_the_accumulator(self):
        partial = PartialAggregationSpec(SumAggregation(1))
        acc = partial.initialize(4)
        partial.aggregate(acc, np.array([0, 0, 3]), np.array([[1.0], [2.0], [5.0]]))
        out = partial.output(acc)
        np.testing.assert_array_equal(out, acc)
        out[0, 0] = 99.0
        assert not np.isclose(acc[0, 0], 99.0)

    def test_combine_delegates_to_inner(self):
        partial = PartialAggregationSpec(MinAggregation(1))
        a = partial.initialize(2)
        b = partial.initialize(2)
        partial.aggregate(a, np.array([0]), np.array([[3.0]]))
        partial.aggregate(b, np.array([0]), np.array([[1.0]]))
        partial.combine(a, b)
        assert a[0, 0] == 1.0

    def test_as_partial_wraps_the_resolved_spec(self):
        _, _, chunks, mapping, grid = make_functional_setup(
            np.random.default_rng(0), value_components=2
        )
        query = RangeQuery(
            "d", Rect((0, 0), (10, 10)), mapping, grid,
            aggregation=MinAggregation(2), strategy="FRA",
        )
        wrapped = as_partial(query)
        assert isinstance(wrapped.aggregation, PartialAggregationSpec)
        assert wrapped.aggregation.inner.value_components == 2
        # The original query is untouched (dataclasses.replace).
        assert isinstance(query.aggregation, MinAggregation)


class TestEmptyPartial:
    def test_zero_everywhere(self):
        _, _, chunks, mapping, grid = make_functional_setup(
            np.random.default_rng(0)
        )
        query = RangeQuery(
            "d", Rect((0, 0), (1, 1)), mapping, grid,
            aggregation="sum", strategy="FRA",
        )
        r = empty_partial_result(query)
        assert len(r.output_ids) == 0
        assert r.chunk_values == []
        assert r.n_reads == 0 and r.bytes_read == 0
        assert r.n_aggregations == 0 and r.n_combines == 0
        assert r.chunks_pruned == 0
        assert r.completeness == 1.0
        assert r.strategy == "FRA"

    def test_mark_matches_planner_message(self, rng):
        """The mark must keep matching the planner's actual message --
        it is how shard servers tell "this shard owns nothing here"
        apart from genuinely bad queries."""
        from repro.dataset.partition import hilbert_partition
        from repro.space.attribute_space import AttributeSpace

        in_space = AttributeSpace.regular("in", ("x", "y"), (0, 0), (10, 10))
        # Items clustered in one corner leave (8,8)-(9,9) inside the
        # space but outside every chunk MBR.
        coords = rng.uniform(0, 4, size=(100, 2))
        values = rng.integers(1, 10, size=(100, 1)).astype(float)
        adr = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
        adr.load("corner", in_space, hilbert_partition(coords, values, 20))
        _, _, _, mapping, grid = make_functional_setup(rng)
        nothing = RangeQuery(
            "corner", Rect((8, 8), (9, 9)), mapping, grid,
            aggregation="sum", strategy="FRA",
        )
        with pytest.raises(ValueError, match=EMPTY_SELECTION_MARK):
            adr.execute(nothing)


class TestCombinePartials:
    def test_single_partial_roundtrips_to_full_result(self, rng):
        """``combine(init, x) == x``: one shard's raw accumulator,
        combined into a fresh init and finalized once, must equal the
        plain (non-partial) execution bit for bit."""
        adr, query = make_adr_and_query(rng, MeanAggregation(1))
        full = adr.execute(query)
        partial = adr.execute(as_partial(query))
        spec = query.spec()
        values, n_combines = combine_partials(
            spec, query.grid, partial.output_ids, [(0, partial)]
        )
        assert n_combines == len(partial.output_ids)
        assert len(values) == len(full.chunk_values)
        for a, b in zip(values, full.chunk_values):
            assert np.array_equal(a, b, equal_nan=True)

    def test_split_partials_recombine_exactly(self, rng):
        """Aggregating two disjoint item halves separately and merging
        the raw accumulators equals aggregating everything at once."""
        adr, query = make_adr_and_query(rng, MeanAggregation(1))
        full = adr.execute(query)
        lo = RangeQuery(
            query.dataset, Rect((0, 0), (10, 5)), query.mapping, query.grid,
            aggregation=query.aggregation, strategy=query.strategy,
        )
        hi = RangeQuery(
            query.dataset, Rect((0, 5), (10, 10)), query.mapping, query.grid,
            aggregation=query.aggregation, strategy=query.strategy,
        )
        p_lo = adr.execute(as_partial(lo))
        p_hi = adr.execute(as_partial(hi))
        values, _ = combine_partials(
            query.spec(), query.grid, full.output_ids, [(0, p_lo), (1, p_hi)]
        )
        # Chunks straddling the split boundary are re-read by both
        # halves, so only exact region splits recombine; the mean over
        # y<5 plus the mean over y>=5 covers every item exactly once.
        for o, a, b in zip(full.output_ids, values, full.chunk_values):
            np.testing.assert_allclose(
                a, b, equal_nan=True, err_msg=f"output chunk {int(o)}"
            )

    def test_shard_order_is_deterministic(self, rng):
        adr, query = make_adr_and_query(rng, MinAggregation(2), value_components=2)
        partial = adr.execute(as_partial(query))
        spec = query.spec()
        a, _ = combine_partials(
            spec, query.grid, partial.output_ids,
            [(1, partial), (0, partial)],
        )
        b, _ = combine_partials(
            spec, query.grid, partial.output_ids,
            [(0, partial), (1, partial)],
        )
        for x, y in zip(a, b):
            assert np.array_equal(x, y, equal_nan=True)

    def test_missing_outputs_fall_back_to_init(self, rng):
        """A shard contributing nothing to some output chunk leaves
        that chunk at the spec's initial value (and costs no combine)."""
        from dataclasses import replace

        adr, query = make_adr_and_query(rng, "sum")
        partial = adr.execute(as_partial(query))
        spec = query.spec()
        trimmed = replace(
            partial,
            output_ids=partial.output_ids[:-1],
            chunk_values=partial.chunk_values[:-1],
        )
        values, n_combines = combine_partials(
            spec, query.grid, partial.output_ids, [(0, trimmed)]
        )
        assert n_combines == len(partial.output_ids) - 1
        missing = int(partial.output_ids[-1])
        init = spec.output(spec.initialize(query.grid.cells_in_chunk(missing)))
        assert np.array_equal(values[-1], init, equal_nan=True)
