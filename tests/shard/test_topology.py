"""Tests for the Hilbert chunk-to-shard assignment and topology."""

import numpy as np
import pytest

from helpers import make_functional_setup
from repro.dataset.chunkset import ChunkSet
from repro.shard.topology import (
    ShardAssignment,
    ShardTopology,
    assign_shards,
    shard_chunks,
)
from repro.util.geometry import Rect


def chunkset_of(chunks):
    return ChunkSet.from_metas([c.meta for c in chunks])


class TestShardAssignment:
    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardAssignment(0, np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError, match="1-d"):
            ShardAssignment(2, np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(ValueError, match="in \\[0, n_shards\\)"):
            ShardAssignment(2, np.array([0, 1, 2]))
        with pytest.raises(ValueError, match="in \\[0, n_shards\\)"):
            ShardAssignment(2, np.array([0, -1]))

    def test_global_ids_are_ascending_and_partition(self, rng):
        _, _, chunks, _, _ = make_functional_setup(rng)
        assignment = assign_shards(chunkset_of(chunks), 3)
        seen = []
        for sid in range(3):
            gids = assignment.global_ids(sid)
            assert np.all(np.diff(gids) > 0)
            assert np.all(assignment.shard_of[gids] == sid)
            seen.extend(gids.tolist())
        assert sorted(seen) == list(range(len(chunks)))

    def test_global_ids_rejects_unknown_shard(self, rng):
        _, _, chunks, _, _ = make_functional_setup(rng)
        assignment = assign_shards(chunkset_of(chunks), 2)
        with pytest.raises(ValueError, match="shard id"):
            assignment.global_ids(2)

    def test_counts_balanced(self, rng):
        _, _, chunks, _, _ = make_functional_setup(rng)
        for n_shards in (1, 2, 3, 5):
            counts = assign_shards(chunkset_of(chunks), n_shards).counts()
            assert counts.sum() == len(chunks)
            # Round-robin dealing: shard loads differ by at most one.
            assert counts.max() - counts.min() <= 1


class TestAssignShards:
    def test_round_robin_over_hilbert_order(self, rng):
        _, _, chunks, _, _ = make_functional_setup(rng)
        cs = chunkset_of(chunks)
        assignment = assign_shards(cs, 4, bits=16)
        order = cs.hilbert_order(16)
        # The k-th chunk along the curve lands on shard k % n_shards.
        np.testing.assert_array_equal(
            assignment.shard_of[order], np.arange(len(cs)) % 4
        )

    def test_deterministic(self, rng):
        _, _, chunks, _, _ = make_functional_setup(rng)
        cs = chunkset_of(chunks)
        a = assign_shards(cs, 3)
        b = assign_shards(cs, 3)
        np.testing.assert_array_equal(a.shard_of, b.shard_of)

    def test_adjacent_chunks_spread_across_shards(self, rng):
        """The declustering point: consecutive chunks on the curve --
        the ones a range query co-retrieves -- are never co-located."""
        _, _, chunks, _, _ = make_functional_setup(rng)
        cs = chunkset_of(chunks)
        assignment = assign_shards(cs, 4)
        along_curve = assignment.shard_of[cs.hilbert_order(16)]
        assert np.all(along_curve[1:] != along_curve[:-1])

    def test_rejects_bad_shard_count(self, rng):
        _, _, chunks, _, _ = make_functional_setup(rng)
        with pytest.raises(ValueError, match="n_shards"):
            assign_shards(chunkset_of(chunks), 0)


class TestShardChunks:
    def test_local_ids_dense_payloads_preserved(self, rng):
        _, _, chunks, _, _ = make_functional_setup(rng)
        assignment = assign_shards(chunkset_of(chunks), 3)
        for sid in range(3):
            local = shard_chunks(chunks, assignment, sid)
            gids = assignment.global_ids(sid)
            assert [c.meta.chunk_id for c in local] == list(range(len(gids)))
            for lc, gid in zip(local, gids):
                src = chunks[int(gid)]
                np.testing.assert_array_equal(lc.coords, src.coords)
                np.testing.assert_array_equal(lc.values, src.values)

    def test_length_mismatch_rejected(self, rng):
        _, _, chunks, _, _ = make_functional_setup(rng)
        assignment = assign_shards(chunkset_of(chunks), 2)
        with pytest.raises(ValueError, match="assignment over"):
            shard_chunks(chunks[:-1], assignment, 0)


class TestShardTopology:
    def test_build_carries_index_and_synopsis(self, rng):
        in_space, _, chunks, _, _ = make_functional_setup(rng)
        topo = ShardTopology.build("d", in_space, chunks, n_shards=3)
        assert topo.n_shards == 3
        assert topo.dataset == "d"
        assert len(topo.chunks) == len(chunks)
        # The router prunes with the same per-chunk value synopses a
        # single-process planner uses.
        assert topo.chunks.synopsis is not None
        # The spatial index answers the scatter's chunk selection.
        full = topo.index.query(Rect((0, 0), (10, 10)))
        assert sorted(int(i) for i in full) == list(range(len(chunks)))
