"""Tests for the scatter/gather router: planning, retry/failover,
degrade-vs-raise semantics, hedging, drain and health probes."""

import time

import numpy as np
import pytest

from helpers import make_functional_setup
from repro.frontend.adr import ADR
from repro.frontend.protocol import DeadlineExceededError, ProtocolError
from repro.frontend.query import RangeQuery
from repro.frontend.service import RemoteQueryError
from repro.machine.config import MachineConfig
from repro.shard.cluster import ShardCluster, _LocalShardClient
from repro.shard.router import (
    RouterPolicy,
    ShardEndpoint,
    ShardRouter,
    ShardUnavailableError,
)
from repro.store.retry import RetryPolicy
from repro.util.geometry import Rect
from repro.util.units import MB

N_SHARDS = 3


def fast_policy(max_attempts=2, hedge_after_s=None):
    return RouterPolicy(
        shard_deadline_s=10.0,
        connect_timeout_s=2.0,
        retry=RetryPolicy(
            max_attempts=max_attempts,
            base_delay=0.01,
            retry_on=(OSError, ProtocolError),
        ),
        hedge_after_s=hedge_after_s,
    )


@pytest.fixture
def deployment(rng):
    in_space, _, chunks, mapping, grid = make_functional_setup(rng)
    cluster = ShardCluster.build(
        "d", in_space, chunks, n_shards=N_SHARDS,
        router_policy=fast_policy(),
    )
    solo = ADR(machine=MachineConfig(n_procs=2, memory_per_proc=MB))
    solo.load("d", in_space, chunks)

    def query(region=Rect((0, 0), (10, 10)), **kw):
        kw.setdefault("aggregation", "mean")
        kw.setdefault("strategy", "FRA")
        return RangeQuery("d", region, mapping, grid, **kw)

    with cluster:
        yield cluster, solo, query


def local_endpoints():
    return [
        ShardEndpoint(shard_id=sid, address=sid) for sid in range(N_SHARDS)
    ]


class TestRouterValidation:
    def test_duplicate_endpoint_rejected(self, deployment):
        cluster, _, _ = deployment
        eps = local_endpoints()
        with pytest.raises(ValueError, match="duplicate endpoint"):
            ShardRouter(cluster.topology, eps + [eps[0]])

    def test_missing_endpoint_rejected(self, deployment):
        cluster, _, _ = deployment
        with pytest.raises(ValueError, match="no endpoint for shards \\[2\\]"):
            ShardRouter(cluster.topology, local_endpoints()[:-1])

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RouterPolicy(shard_deadline_s=0)
        with pytest.raises(ValueError):
            RouterPolicy(connect_timeout_s=-1)
        with pytest.raises(ValueError):
            RouterPolicy(hedge_after_s=-0.1)


class TestPlanning:
    def test_plan_covers_every_selected_chunk_once(self, deployment):
        cluster, _, query = deployment
        plan = cluster.router.plan(query())
        gathered = np.sort(
            np.concatenate(list(plan.in_ids_by_shard.values()))
        )
        assert len(gathered) == plan.n_planned
        assert len(np.unique(gathered)) == len(gathered)
        for sid, gids in plan.in_ids_by_shard.items():
            assert np.all(
                cluster.topology.assignment.shard_of[gids] == sid
            )

    def test_full_region_scatters_to_every_shard(self, deployment):
        cluster, _, query = deployment
        plan = cluster.router.plan(query())
        assert plan.shard_ids == list(range(N_SHARDS))

    def test_wrong_dataset_rejected_router_side(self, deployment):
        cluster, _, query = deployment
        q = query()
        bad = RangeQuery(
            "elsewhere", q.region, q.mapping, q.grid,
            aggregation="mean", strategy="FRA",
        )
        with pytest.raises(ValueError, match="this router"):
            cluster.router.plan(bad)


class TestAutoStrategy:
    """``strategy='auto'`` resolves once, router-side, on the global
    topology: every shard must run the same concrete strategy or the
    partial accumulators would not be comparable."""

    def test_plan_resolves_auto_before_scatter(self, deployment):
        cluster, _, query = deployment
        plan = cluster.router.plan(query(strategy="auto"))
        assert plan.choice is not None
        assert plan.query.strategy == plan.choice.selected
        assert plan.query.strategy in ("FRA", "SRA", "DA", "HYBRID")
        totals = [est.total for _, est in plan.choice.ranking]
        assert totals == sorted(totals)

    def test_auto_matches_solo_execution(self, deployment):
        cluster, solo, query = deployment
        got = cluster.execute(query(strategy="auto"))
        assert got.selected_strategy in ("FRA", "SRA", "DA", "HYBRID")
        assert got.strategy_ranking
        assert not got.shard_errors and got.completeness == 1.0
        want = solo.execute(query(strategy=got.selected_strategy))
        assert got.output_ids.tolist() == want.output_ids.tolist()
        for a, b in zip(got.chunk_values, want.chunk_values):
            np.testing.assert_allclose(a, b, equal_nan=True)

    def test_local_and_wire_agree_on_auto(self, deployment):
        cluster, _, query = deployment
        wire = cluster.execute(query(strategy="auto"))
        local = cluster.execute_local(query(strategy="auto"))
        assert wire.selected_strategy == local.selected_strategy
        assert wire.output_ids.tolist() == local.output_ids.tolist()
        for a, b in zip(wire.chunk_values, local.chunk_values):
            assert np.array_equal(a, b, equal_nan=True)

    def test_fixed_strategy_has_no_choice(self, deployment):
        cluster, _, query = deployment
        plan = cluster.router.plan(query())
        assert plan.choice is None
        got = cluster.execute(query())
        assert got.selected_strategy == ""
        assert got.strategy_ranking == {}


class TestScatterGather:
    def test_wire_equals_local_equals_solo(self, deployment):
        cluster, solo, query = deployment
        q = query()
        wire = cluster.execute(q)
        local = cluster.execute_local(q)
        want = solo.execute(q)
        assert wire.output_ids.tolist() == local.output_ids.tolist()
        for a, b in zip(wire.chunk_values, local.chunk_values):
            assert np.array_equal(a, b, equal_nan=True)
        assert wire.output_ids.tolist() == want.output_ids.tolist()
        for a, b in zip(wire.chunk_values, want.chunk_values):
            np.testing.assert_allclose(a, b, equal_nan=True)
        assert not wire.shard_errors and wire.completeness == 1.0

    def test_merged_counters_sum_over_shards(self, deployment):
        cluster, solo, query = deployment
        q = query()
        got = cluster.execute(q)
        want = solo.execute(q)
        # Every selected chunk is read exactly once somewhere.
        assert got.n_reads == want.n_reads
        assert got.bytes_read == want.bytes_read
        assert got.n_aggregations == want.n_aggregations
        # The global combine adds one fold per (live shard, output).
        assert got.n_combines > want.n_combines


class TestDegradeAndRaise:
    def test_crashed_shard_degrades(self, deployment):
        cluster, _, query = deployment
        cluster.crash_shard(0)
        q = query(on_error="degrade")
        got = cluster.execute(q)
        assert set(got.shard_errors) == {0}
        assert 0.0 < got.completeness < 1.0
        planned = cluster.router.plan(q).in_ids_by_shard[0]
        for gid in planned:
            assert "shard 0 unavailable" in got.chunk_errors[int(gid)]
        # The degraded wire run equals the degraded local expectation.
        want = cluster.execute_local(q, down=frozenset({0}))
        assert got.output_ids.tolist() == want.output_ids.tolist()
        for a, b in zip(got.chunk_values, want.chunk_values):
            assert np.array_equal(a, b, equal_nan=True)
        assert got.completeness == want.completeness

    def test_crashed_shard_raises_by_default(self, deployment):
        cluster, _, query = deployment
        cluster.crash_shard(1)
        with pytest.raises(ShardUnavailableError) as exc:
            cluster.execute(query())
        assert set(exc.value.shard_errors) == {1}

    def test_drained_shard_degrades(self, deployment):
        cluster, _, query = deployment
        cluster.drain_shard(2)
        got = cluster.execute(query(on_error="degrade"))
        assert set(got.shard_errors) == {2}
        assert "shard_unavailable" in got.shard_errors[2]


class FlakyFactory:
    """Client factory failing the first *fail* attempts per shard."""

    def __init__(self, cluster, fail=0, error=ConnectionRefusedError):
        self.cluster = cluster
        self.fail = fail
        self.error = error
        self.attempts = {}

    def __call__(self, address, timeout):
        sid = int(address)
        n = self.attempts.get(sid, 0)
        self.attempts[sid] = n + 1
        if n < self.fail:
            raise self.error(f"injected failure {n} for shard {sid}")
        return _LocalShardClient(self.cluster.servers[sid])


class TestRetryAndFailover:
    def test_transient_failure_retried_to_success(self, deployment):
        cluster, _, query = deployment
        slept = []
        factory = FlakyFactory(cluster, fail=1)
        router = cluster.router_for(
            endpoints=local_endpoints(),
            policy=fast_policy(max_attempts=2),
            client_factory=factory,
            sleep=slept.append,
        )
        got = router.execute(query())
        assert not got.shard_errors and got.completeness == 1.0
        assert factory.attempts == {sid: 2 for sid in range(N_SHARDS)}
        # One backoff pause per shard, at the schedule's first delay.
        assert slept == [0.01] * N_SHARDS

    def test_persistent_failure_degrades_after_max_attempts(self, deployment):
        cluster, _, query = deployment
        factory = FlakyFactory(cluster, fail=99)
        router = cluster.router_for(
            endpoints=local_endpoints(),
            policy=fast_policy(max_attempts=3),
            client_factory=factory,
            sleep=lambda s: None,
        )
        got = router.execute(query(on_error="degrade"))
        assert set(got.shard_errors) == set(range(N_SHARDS))
        assert got.completeness == 0.0
        assert factory.attempts == {sid: 3 for sid in range(N_SHARDS)}

    def test_bad_request_never_retried(self, deployment):
        cluster, _, query = deployment
        attempts = []

        class BadRequestClient:
            def query_partial(self, q, deadline=None):
                raise RemoteQueryError(
                    "server rejected partial query [bad_request]: nope",
                    code="bad_request",
                )

            def close(self):
                pass

        def factory(address, timeout):
            attempts.append(int(address))
            return BadRequestClient()

        router = cluster.router_for(
            endpoints=local_endpoints(),
            policy=fast_policy(max_attempts=4),
            client_factory=factory,
            sleep=lambda s: None,
        )
        # Even a degrade-tolerant query propagates bad_request: the
        # query itself is at fault and degradation cannot mask that.
        with pytest.raises(RemoteQueryError) as exc:
            router.execute(query(on_error="degrade"))
        assert exc.value.code == "bad_request"
        assert sorted(set(attempts)) == list(range(N_SHARDS))
        assert all(attempts.count(sid) == 1 for sid in range(N_SHARDS))

    def test_failover_to_replica_address(self, deployment):
        """Attempt k cycles the endpoint's address list, so a dead
        primary with a live replica succeeds within max_attempts=2."""
        cluster, _, query = deployment
        eps = [
            ShardEndpoint(shard_id=sid, address=f"dead-{sid}", replicas=(sid,))
            for sid in range(N_SHARDS)
        ]

        def factory(address, timeout):
            if isinstance(address, str):
                raise ConnectionRefusedError(f"{address} refuses")
            return _LocalShardClient(cluster.servers[int(address)])

        router = cluster.router_for(
            endpoints=eps,
            policy=fast_policy(max_attempts=2),
            client_factory=factory,
            sleep=lambda s: None,
        )
        got = router.execute(query())
        assert not got.shard_errors and got.completeness == 1.0


class TestHedging:
    def test_straggling_primary_hedged_to_replica(self, deployment):
        cluster, _, query = deployment

        class SlowClient:
            def __init__(self, inner):
                self.inner = inner

            def query_partial(self, q, deadline=None):
                time.sleep(1.5)
                return self.inner.query_partial(q, deadline)

            def close(self):
                pass

        def factory(address, timeout):
            kind, sid = address
            client = _LocalShardClient(cluster.servers[sid])
            return SlowClient(client) if kind == "slow" else client

        eps = [
            ShardEndpoint(
                shard_id=sid, address=("slow", sid), replicas=(("fast", sid),)
            )
            for sid in range(N_SHARDS)
        ]
        router = cluster.router_for(
            endpoints=eps,
            policy=fast_policy(max_attempts=1, hedge_after_s=0.05),
            client_factory=factory,
        )
        start = time.monotonic()
        got = router.execute(query())
        elapsed = time.monotonic() - start
        assert not got.shard_errors and got.completeness == 1.0
        # The replicas answered; nobody waited out the slow primaries.
        assert elapsed < 1.4


class TestHealth:
    def test_health_reports_every_shard(self, deployment):
        cluster, _, _ = deployment
        report = cluster.router.health()
        assert sorted(report) == list(range(N_SHARDS))
        for sid, h in report.items():
            assert h["status"] == "serving"
            assert h["shard_id"] == sid

    def test_health_marks_dead_and_draining_shards(self, deployment):
        cluster, _, _ = deployment
        cluster.crash_shard(0)
        cluster.drain_shard(1)
        report = cluster.router.health()
        assert report[0]["status"] == "unreachable"
        assert "error" in report[0]
        assert report[1]["status"] == "draining"
        assert report[2]["status"] == "serving"


class TestDeadlines:
    def test_stalled_shard_bounded_by_deadline(self, deployment):
        cluster, _, query = deployment

        class StallingClient:
            def query_partial(self, q, deadline=None):
                # Honors its deadline like a real socket client would.
                time.sleep(min(30.0, deadline or 30.0))
                raise DeadlineExceededError("stalled past the deadline")

            def close(self):
                pass

        policy = RouterPolicy(
            shard_deadline_s=0.5,
            connect_timeout_s=0.5,
            retry=RetryPolicy(
                max_attempts=1, base_delay=0.01,
                retry_on=(OSError, ProtocolError),
            ),
        )

        def factory(address, timeout):
            sid = int(address)
            if sid == 0:
                return StallingClient()
            return _LocalShardClient(cluster.servers[sid])

        router = cluster.router_for(
            endpoints=local_endpoints(), policy=policy, client_factory=factory
        )
        start = time.monotonic()
        got = router.execute(query(on_error="degrade"))
        elapsed = time.monotonic() - start
        assert set(got.shard_errors) == {0}
        assert "eadline" in got.shard_errors[0]
        assert elapsed < 5.0
