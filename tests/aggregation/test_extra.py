"""Tests for the extra aggregations and the holistic rejection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.extra import (
    HolisticAggregationError,
    MedianAggregation,
    VarianceAggregation,
    WeightedMeanAggregation,
)
from repro.aggregation.functions import AGGREGATIONS


class TestVariance:
    def test_matches_numpy(self, rng):
        spec = VarianceAggregation(1)
        vals = rng.integers(0, 50, size=60).astype(float)
        cells = rng.integers(0, 4, size=60)
        acc = spec.initialize(4)
        spec.aggregate(acc, cells, vals)
        out = spec.output(acc)
        for c in range(4):
            mask = cells == c
            if mask.any():
                assert out[c, 0] == pytest.approx(np.var(vals[mask]))
            else:
                assert np.isnan(out[c, 0])

    def test_multicomponent(self, rng):
        spec = VarianceAggregation(2)
        vals = rng.normal(size=(40, 2))
        cells = np.zeros(40, dtype=int)
        acc = spec.initialize(1)
        spec.aggregate(acc, cells, vals)
        out = spec.output(acc)
        np.testing.assert_allclose(out[0], np.var(vals, axis=0))

    @given(st.integers(0, 2**31), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_partition_invariance(self, seed, n_parts):
        rng = np.random.default_rng(seed)
        spec = VarianceAggregation(1)
        vals = rng.integers(-20, 20, size=(50, 1)).astype(float)
        cells = rng.integers(0, 3, size=50)
        serial = spec.initialize(3)
        spec.aggregate(serial, cells, vals)
        parts = rng.integers(0, n_parts, size=50)
        merged = spec.initialize(3)
        for p in range(n_parts):
            acc = spec.initialize(3)
            if (parts == p).any():
                spec.aggregate(acc, cells[parts == p], vals[parts == p])
            spec.combine(merged, acc)
        np.testing.assert_allclose(
            spec.output(merged), spec.output(serial), equal_nan=True
        )

    def test_variance_never_negative(self, rng):
        spec = VarianceAggregation(1)
        # constant values: exact variance 0, rounding must not go below
        acc = spec.initialize(1)
        spec.aggregate(acc, np.zeros(100, dtype=int), np.full(100, 1e8))
        assert spec.output(acc)[0, 0] >= 0.0


class TestWeightedMean:
    def test_matches_numpy_average(self, rng):
        spec = WeightedMeanAggregation(2)
        v = rng.normal(size=30)
        w = rng.uniform(0.1, 5, size=30)
        acc = spec.initialize(1)
        spec.aggregate(acc, np.zeros(30, dtype=int), np.stack((v, w), axis=1))
        out = spec.output(acc)
        assert out[0, 0] == pytest.approx(np.average(v, weights=w))

    def test_zero_weight_cell_nan(self):
        spec = WeightedMeanAggregation(2)
        out = spec.output(spec.initialize(1))
        assert np.isnan(out[0, 0])

    def test_negative_weight_rejected(self):
        spec = WeightedMeanAggregation(2)
        acc = spec.initialize(1)
        with pytest.raises(ValueError, match="non-negative"):
            spec.aggregate(acc, np.array([0]), np.array([[1.0, -1.0]]))

    def test_needs_weight_component(self):
        with pytest.raises(ValueError):
            WeightedMeanAggregation(1)

    def test_partition_invariance(self, rng):
        spec = WeightedMeanAggregation(3)
        vals = rng.integers(0, 9, size=(40, 3)).astype(float)
        cells = rng.integers(0, 2, size=40)
        serial = spec.initialize(2)
        spec.aggregate(serial, cells, vals)
        merged = spec.initialize(2)
        for half in (slice(0, 20), slice(20, 40)):
            acc = spec.initialize(2)
            spec.aggregate(acc, cells[half], vals[half])
            spec.combine(merged, acc)
        np.testing.assert_allclose(
            spec.output(merged), spec.output(serial), equal_nan=True
        )


class TestHolisticRejection:
    def test_median_raises(self):
        with pytest.raises(HolisticAggregationError, match="holistic"):
            MedianAggregation(1)

    def test_registry_contains_extras_not_median(self):
        assert "variance" in AGGREGATIONS
        assert "wmean" in AGGREGATIONS
        assert "median" not in AGGREGATIONS


class TestEndToEnd:
    def test_variance_query_through_adr(self, rng):
        from repro.aggregation.output_grid import OutputGrid
        from repro.dataset.partition import hilbert_partition
        from repro.frontend.adr import ADR
        from repro.frontend.query import RangeQuery
        from repro.machine.config import MachineConfig
        from repro.space.attribute_space import AttributeSpace
        from repro.space.mapping import GridMapping
        from repro.util.geometry import Rect
        from repro.util.units import MB

        adr = ADR(machine=MachineConfig(n_procs=3, memory_per_proc=MB))
        space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
        coords = rng.uniform(0, 10, size=(300, 2))
        values = rng.integers(0, 30, size=300).astype(float)
        adr.load("d", space, hilbert_partition(coords, values, 20))
        out_space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
        grid = OutputGrid(out_space, (4, 4), (2, 2))
        mapping = GridMapping(space, out_space, (4, 4))
        q = RangeQuery("d", Rect((0, 0), (10, 10)), mapping, grid,
                       aggregation="variance", strategy="DA")
        result = adr.execute(q)
        full = result.assemble(grid)[:, :, 0]
        cells = np.clip((coords * 0.4).astype(int), 0, 3)
        for cx in range(4):
            for cy in range(4):
                mask = (cells[:, 0] == cx) & (cells[:, 1] == cy)
                if mask.sum():
                    assert full[cx, cy] == pytest.approx(np.var(values[mask]))
