"""Tests for aggregation functions.

The load-bearing property is *partition invariance*: aggregating a
batch in arbitrary sub-batches on arbitrary "processors" and merging
the partial accumulators must equal aggregating everything at once.
That is exactly what makes the FRA/SRA global-combine phase correct,
so it gets a hypothesis-driven test per aggregation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.functions import (
    AGGREGATIONS,
    BestValueComposite,
    CountAggregation,
    MaxAggregation,
    MeanAggregation,
    MinAggregation,
    SumAggregation,
)

ALL_SPECS = [
    SumAggregation(2),
    CountAggregation(1),
    MinAggregation(1),
    MaxAggregation(2),
    MeanAggregation(2),
    BestValueComposite(3),
]


def run_once(spec, n_cells, cell_idx, values):
    acc = spec.initialize(n_cells)
    spec.aggregate(acc, cell_idx, values)
    return acc


class TestBasicSemantics:
    def test_sum(self):
        spec = SumAggregation(1)
        acc = run_once(spec, 3, np.array([0, 0, 2]), np.array([1.0, 2.0, 5.0]))
        assert spec.output(acc)[:, 0].tolist() == [3.0, 0.0, 5.0]

    def test_count(self):
        spec = CountAggregation()
        acc = run_once(spec, 2, np.array([1, 1, 1]), np.zeros(3))
        assert spec.output(acc)[:, 0].tolist() == [0.0, 3.0]

    def test_min_max(self):
        vals = np.array([3.0, -1.0, 7.0])
        idx = np.array([0, 0, 0])
        lo = run_once(MinAggregation(1), 1, idx, vals)
        hi = run_once(MaxAggregation(1), 1, idx, vals)
        assert lo[0, 0] == -1.0 and hi[0, 0] == 7.0

    def test_min_empty_cell_is_inf(self):
        spec = MinAggregation(1)
        out = spec.output(spec.initialize(2))
        assert np.isinf(out).all()

    def test_mean(self):
        spec = MeanAggregation(1)
        acc = run_once(spec, 2, np.array([0, 0, 1]), np.array([2.0, 4.0, 10.0]))
        out = spec.output(acc)
        assert out[0, 0] == 3.0 and out[1, 0] == 10.0

    def test_mean_empty_cell_nan(self):
        spec = MeanAggregation(1)
        out = spec.output(spec.initialize(1))
        assert np.isnan(out[0, 0])

    def test_best_value_selects_highest_score(self):
        spec = BestValueComposite(2)  # (score, payload)
        vals = np.array([[0.5, 10.0], [0.9, 20.0], [0.7, 30.0]])
        acc = run_once(spec, 1, np.zeros(3, dtype=int), vals)
        out = spec.output(acc)
        assert out[0, 0] == 20.0

    def test_best_value_empty_cell_nan(self):
        spec = BestValueComposite(2)
        out = spec.output(spec.initialize(1))
        assert np.isnan(out[0, 0])

    def test_best_value_needs_payload(self):
        with pytest.raises(ValueError):
            BestValueComposite(1)

    def test_registry(self):
        # core names plus the extras registered by aggregation.extra
        assert {"sum", "count", "min", "max", "mean", "best"} <= set(AGGREGATIONS)
        assert "variance" in AGGREGATIONS and "wmean" in AGGREGATIONS


class TestValidation:
    def test_component_mismatch(self):
        spec = SumAggregation(2)
        acc = spec.initialize(2)
        with pytest.raises(ValueError):
            spec.aggregate(acc, np.array([0]), np.array([[1.0, 2.0, 3.0]]))

    def test_index_out_of_range(self):
        spec = SumAggregation(1)
        acc = spec.initialize(2)
        with pytest.raises(IndexError):
            spec.aggregate(acc, np.array([5]), np.array([1.0]))

    def test_length_mismatch(self):
        spec = SumAggregation(1)
        acc = spec.initialize(2)
        with pytest.raises(ValueError):
            spec.aggregate(acc, np.array([0, 1]), np.array([1.0]))

    def test_acc_bytes(self):
        assert MeanAggregation(2).acc_bytes(10) == 10 * 3 * 8
        assert SumAggregation(1).acc_bytes(4) == 4 * 8


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: type(s).__name__)
class TestPartitionInvariance:
    @given(seed=st.integers(0, 2**31), n_parts=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_split_aggregate_combine_equals_serial(self, spec, seed, n_parts):
        rng = np.random.default_rng(seed)
        n_cells, n_items = 6, 40
        cell_idx = rng.integers(0, n_cells, size=n_items)
        # integer-valued floats: exact arithmetic, no fp-order noise
        values = rng.integers(-50, 50, size=(n_items, spec.value_components)).astype(float)

        serial = run_once(spec, n_cells, cell_idx, values)

        parts = rng.integers(0, n_parts, size=n_items)
        merged = spec.initialize(n_cells)
        partials = []
        for p in range(n_parts):
            mask = parts == p
            acc = spec.initialize(n_cells)
            if mask.any():
                spec.aggregate(acc, cell_idx[mask], values[mask])
            partials.append(acc)
        rng.shuffle(partials)  # combine order must not matter
        for acc in partials:
            spec.combine(merged, acc)

        np.testing.assert_array_equal(spec.output(merged), spec.output(serial))

    def test_combine_with_initial_is_identity(self, spec):
        rng = np.random.default_rng(0)
        cell_idx = rng.integers(0, 4, size=10)
        values = rng.integers(0, 9, size=(10, spec.value_components)).astype(float)
        acc = run_once(spec, 4, cell_idx, values)
        expected = spec.output(acc)
        spec.combine(acc, spec.initialize(4))
        np.testing.assert_array_equal(spec.output(acc), expected)

    def test_aggregate_order_independent(self, spec):
        rng = np.random.default_rng(1)
        cell_idx = rng.integers(0, 3, size=30)
        values = rng.integers(0, 100, size=(30, spec.value_components)).astype(float)
        a = run_once(spec, 3, cell_idx, values)
        perm = rng.permutation(30)
        b = run_once(spec, 3, cell_idx[perm], values[perm])
        np.testing.assert_array_equal(spec.output(a), spec.output(b))
