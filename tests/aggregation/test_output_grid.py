"""Tests for the chunked output grid."""

import numpy as np
import pytest

from repro.aggregation.output_grid import OutputGrid
from repro.space.attribute_space import AttributeSpace
from repro.util.geometry import Rect


def make_grid(grid=(12, 8), chunk=(4, 4)):
    space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
    return OutputGrid(space, grid, chunk)


class TestShape:
    def test_counts(self):
        g = make_grid()
        assert g.n_cells == 96
        assert g.blocks == (3, 2)
        assert g.n_chunks == 6

    def test_uneven_blocking(self):
        g = make_grid(grid=(10, 10), chunk=(4, 4))
        assert g.blocks == (3, 3)
        counts = g.chunk_cell_counts()
        assert counts.sum() == 100
        assert counts.max() == 16 and counts.min() == 4  # corner block 2x2

    def test_chunk_block_ranges(self):
        g = make_grid(grid=(10, 10), chunk=(4, 4))
        start, stop = g.chunk_block(8)  # last block
        assert start == (8, 8) and stop == (10, 10)

    def test_validation(self):
        space = AttributeSpace.regular("o", ("u", "v"), (0, 0), (1, 1))
        with pytest.raises(ValueError):
            OutputGrid(space, (4,), (2, 2))
        with pytest.raises(ValueError):
            OutputGrid(space, (4, 4), (8, 2))
        with pytest.raises(ValueError):
            OutputGrid(space, (4, 4), (2, 2), cell_value_bytes=0)


class TestChunkset:
    def test_mbrs_tile_bounds(self):
        g = make_grid()
        cs = g.chunkset()
        assert len(cs) == 6
        assert cs.bounds == Rect((0, 0), (1, 1))
        assert cs.nbytes.sum() == g.n_cells * g.cell_value_bytes

    def test_uneven_sizes_reflected(self):
        g = make_grid(grid=(10, 10), chunk=(4, 4))
        cs = g.chunkset()
        assert cs.nbytes.min() == 4 * g.cell_value_bytes


class TestCellPlumbing:
    def test_chunk_of_cells(self):
        g = make_grid()
        cells = np.array([[0, 0], [5, 5], [11, 7]])
        assert g.chunk_of_cells(cells).tolist() == [0, 3, 5]

    def test_local_cell_index_roundtrip(self):
        g = make_grid(grid=(10, 10), chunk=(4, 4))
        for cid in range(g.n_chunks):
            start, stop = g.chunk_block(cid)
            all_cells = np.stack(
                np.meshgrid(
                    np.arange(start[0], stop[0]),
                    np.arange(start[1], stop[1]),
                    indexing="ij",
                ),
                axis=-1,
            ).reshape(-1, 2)
            local = g.local_cell_index(cid, all_cells)
            assert sorted(local.tolist()) == list(range(g.cells_in_chunk(cid)))

    def test_local_cell_index_outside_chunk(self):
        g = make_grid()
        with pytest.raises(IndexError):
            g.local_cell_index(0, np.array([[11, 7]]))

    def test_clip_cells(self):
        g = make_grid()
        out = g.clip_cells(np.array([[-3, 5], [50, 9]]))
        assert out.tolist() == [[0, 5], [11, 7]]


class TestAssemble:
    def test_roundtrip(self, rng):
        g = make_grid(grid=(6, 6), chunk=(3, 2))
        full = rng.normal(size=(6, 6, 2))
        parts = []
        for cid in range(g.n_chunks):
            start, stop = g.chunk_block(cid)
            block = full[start[0] : stop[0], start[1] : stop[1]]
            parts.append(block.reshape(-1, 2))
        np.testing.assert_array_equal(g.assemble(parts), full)

    def test_wrong_chunk_count(self):
        g = make_grid()
        with pytest.raises(ValueError):
            g.assemble([np.zeros((16, 1))])

    def test_wrong_chunk_shape(self):
        g = make_grid(grid=(4, 4), chunk=(2, 2))
        parts = [np.zeros((4, 1))] * 3 + [np.zeros((3, 1))]
        with pytest.raises(ValueError):
            g.assemble(parts)
