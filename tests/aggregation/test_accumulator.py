"""Tests for per-processor accumulator management."""

import numpy as np
import pytest

from repro.aggregation.accumulator import AccumulatorSet, BufferPool
from repro.aggregation.functions import (
    MaxAggregation,
    MeanAggregation,
    SumAggregation,
)


class TestAllocation:
    def test_allocate_and_get(self):
        s = AccumulatorSet(SumAggregation(1))
        acc = s.allocate(3, n_cells=10, ghost=False)
        assert s.get(3) is acc
        assert acc.data.shape == (10, 1)
        assert not acc.ghost
        assert 3 in s and len(s) == 1

    def test_double_allocate_rejected(self):
        s = AccumulatorSet(SumAggregation(1))
        s.allocate(0, 4, ghost=False)
        with pytest.raises(KeyError):
            s.allocate(0, 4, ghost=True)

    def test_missing_get(self):
        with pytest.raises(KeyError):
            AccumulatorSet(SumAggregation(1)).get(0)

    def test_memory_budget_enforced(self):
        spec = SumAggregation(1)
        s = AccumulatorSet(spec, memory_limit=spec.acc_bytes(10))
        s.allocate(0, 6, ghost=False)
        with pytest.raises(MemoryError, match="budget"):
            s.allocate(1, 6, ghost=False)

    def test_bytes_in_use_and_clear(self):
        spec = MeanAggregation(2)
        s = AccumulatorSet(spec)
        s.allocate(0, 5, ghost=False)
        assert s.bytes_in_use == spec.acc_bytes(5)
        s.clear()
        assert s.bytes_in_use == 0 and len(s) == 0


class TestAggregationPaths:
    def test_aggregate_and_output(self):
        s = AccumulatorSet(SumAggregation(1))
        s.allocate(0, 3, ghost=False)
        s.aggregate(0, np.array([1, 1]), np.array([2.0, 3.0]))
        assert s.get(0).data[1, 0] == 5.0

    def test_combine_from(self):
        spec = SumAggregation(1)
        owner = AccumulatorSet(spec)
        other = AccumulatorSet(spec)
        owner.allocate(0, 2, ghost=False)
        other.allocate(0, 2, ghost=True)
        other.aggregate(0, np.array([0]), np.array([7.0]))
        owner.combine_from(0, other.get(0).data)
        assert owner.get(0).data[0, 0] == 7.0

    def test_combine_into_ghost_rejected(self):
        s = AccumulatorSet(SumAggregation(1))
        s.allocate(0, 2, ghost=True)
        with pytest.raises(ValueError, match="ghost"):
            s.combine_from(0, np.zeros((2, 1)))

    def test_combine_shape_mismatch(self):
        s = AccumulatorSet(SumAggregation(1))
        s.allocate(0, 2, ghost=False)
        with pytest.raises(ValueError):
            s.combine_from(0, np.zeros((3, 1)))

    def test_ghosts_and_locals_iterators(self):
        s = AccumulatorSet(SumAggregation(1))
        s.allocate(0, 2, ghost=False)
        s.allocate(1, 2, ghost=True)
        s.allocate(2, 2, ghost=True)
        assert sorted(a.output_chunk for a in s.ghosts()) == [1, 2]
        assert [a.output_chunk for a in s.locals()] == [0]


class TestBufferPool:
    def test_clear_recycles_and_reinitializes(self):
        """A buffer released at a tile boundary comes back zeroed (via
        initialize_into) on the next allocation of the same shape."""
        pool = BufferPool()
        s = AccumulatorSet(SumAggregation(1), pool=pool)
        s.allocate(0, 5, ghost=False)
        s.aggregate(0, np.array([2]), np.array([9.0]))
        dirty = s.get(0).data
        s.clear()
        assert pool.buffers_held == 1
        acc = s.allocate(7, 5, ghost=False)
        assert acc.data is dirty  # recycled, not reallocated
        np.testing.assert_array_equal(acc.data, np.zeros((5, 1)))
        assert pool.reuses == 1 and pool.fresh_allocations == 1

    def test_reinit_respects_spec_identity(self):
        """Max re-initializes to -inf, not zero -- reuse must go through
        the spec, not a blanket fill."""
        pool = BufferPool()
        s = AccumulatorSet(MaxAggregation(1), pool=pool)
        s.allocate(0, 3, ghost=False)
        s.aggregate(0, np.array([0]), np.array([4.0]))
        s.clear()
        acc = s.allocate(1, 3, ghost=False)
        assert np.all(np.isneginf(acc.data))

    def test_shape_mismatch_allocates_fresh(self):
        pool = BufferPool()
        s = AccumulatorSet(SumAggregation(1), pool=pool)
        s.allocate(0, 5, ghost=False)
        s.clear()
        s.allocate(0, 6, ghost=False)  # different shape: pool can't serve
        assert pool.reuses == 0 and pool.fresh_allocations == 2
        assert pool.buffers_held == 1  # the 5-cell buffer still waits

    def test_non_owning_views_not_pooled(self):
        """Arena views (the parallel backend's accumulators) must never
        enter the pool."""
        pool = BufferPool()
        arena = np.zeros(10)
        view = arena[2:8].reshape(3, 2)
        pool.put(view)
        readonly = np.zeros((3, 2))
        readonly.setflags(write=False)
        pool.put(readonly)
        assert pool.buffers_held == 0 and pool.returned == 0

    def test_capacity_bound(self):
        pool = BufferPool(max_buffers_per_shape=1)
        pool.put(np.zeros((4, 1)))
        pool.put(np.zeros((4, 1)))
        assert pool.buffers_held == 1

    def test_stats(self):
        pool = BufferPool()
        assert pool.take((3, 1)) is None
        pool.put(np.zeros((3, 1)))
        assert pool.take((3, 1)) is not None
        assert pool.stats() == {
            "pool_reuses": 1,
            "pool_fresh_allocations": 1,
            "pool_buffers_held": 0,
        }
