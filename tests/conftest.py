"""Pytest configuration: makes tests/helpers.py importable everywhere."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
