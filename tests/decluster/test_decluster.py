"""Tests for declustering algorithms and placement metrics."""

import numpy as np
import pytest

from repro.dataset.chunkset import ChunkSet
from repro.dataset.partition import regular_grid_chunkset
from repro.decluster.hilbert import HilbertDeclusterer
from repro.decluster.metrics import placement_report, query_balance
from repro.decluster.simple import RandomDeclusterer, RoundRobinDeclusterer
from repro.util.geometry import Rect


def grid_chunks(n_side=16):
    return regular_grid_chunkset(Rect((0, 0), (1, 1)), (n_side, n_side), 100)


ALL = [HilbertDeclusterer(), RoundRobinDeclusterer(), RandomDeclusterer(seed=0)]


@pytest.mark.parametrize("decl", ALL, ids=lambda d: type(d).__name__)
class TestAssignment:
    def test_valid_range(self, decl):
        cs = grid_chunks()
        node, disk = decl.assign(cs, n_nodes=4, disks_per_node=2)
        assert node.min() >= 0 and node.max() < 4
        assert disk.min() >= 0 and disk.max() < 2
        assert len(node) == len(cs)

    def test_place_returns_placed_copy(self, decl):
        cs = grid_chunks()
        placed = decl.place(cs, 4)
        assert placed.placed and not cs.placed

    def test_bad_args(self, decl):
        with pytest.raises(ValueError):
            decl.assign(grid_chunks(), 0)
        with pytest.raises(ValueError):
            decl.assign(grid_chunks(), 2, 0)


class TestBalance:
    def test_hilbert_and_round_robin_evenly_spread(self):
        cs = grid_chunks()
        for decl in (HilbertDeclusterer(), RoundRobinDeclusterer()):
            node, _ = decl.assign(cs, 8)
            counts = np.bincount(node, minlength=8)
            assert counts.max() - counts.min() <= 1

    def test_hilbert_beats_round_robin_on_range_queries(self, rng):
        """The core declustering claim: for square range queries the
        Hilbert placement keeps the busiest disk closer to ideal than
        striping by row-major chunk id."""
        cs = grid_chunks(16)
        n_disks = 8
        queries = []
        for _ in range(40):
            lo = rng.uniform(0, 0.6, size=2)
            queries.append(Rect(tuple(lo), tuple(lo + 0.35)))
        reports = {}
        for decl in (HilbertDeclusterer(), RoundRobinDeclusterer()):
            placed = decl.place(cs, n_disks)
            reports[type(decl).__name__] = placement_report(placed, queries, n_disks)
        assert (
            reports["HilbertDeclusterer"].mean_ratio
            < reports["RoundRobinDeclusterer"].mean_ratio
        )

    def test_query_balance_fields(self):
        cs = HilbertDeclusterer().place(grid_chunks(8), 4)
        b = query_balance(cs, Rect((0, 0), (1, 1)), 4)
        assert b.n_retrieved == 64
        assert b.ideal == 16
        assert b.busiest_disk >= b.ideal
        assert b.ratio >= 1.0

    def test_query_balance_empty_query(self):
        cs = HilbertDeclusterer().place(grid_chunks(4), 2)
        b = query_balance(cs, Rect((2, 2), (3, 3)), 2)
        assert b.n_retrieved == 0 and b.ratio == 1.0

    def test_balance_requires_placement(self):
        with pytest.raises(ValueError, match="placed"):
            query_balance(grid_chunks(4), Rect((0, 0), (1, 1)), 2)

    def test_placement_report_empty_workload(self):
        cs = HilbertDeclusterer().place(grid_chunks(4), 2)
        rep = placement_report(cs, [], 2)
        assert rep.n_queries == 0

    def test_report_str(self):
        cs = HilbertDeclusterer().place(grid_chunks(4), 2)
        rep = placement_report(cs, [Rect((0, 0), (1, 1))], 2)
        assert "queries" in str(rep)


class TestDeterminism:
    def test_hilbert_deterministic(self):
        cs = grid_chunks()
        a = HilbertDeclusterer().assign(cs, 4)
        b = HilbertDeclusterer().assign(cs, 4)
        assert a[0].tolist() == b[0].tolist()

    def test_random_seeded(self):
        cs = grid_chunks()
        a = RandomDeclusterer(seed=7).assign(cs, 4)
        b = RandomDeclusterer(seed=7).assign(cs, 4)
        assert a[0].tolist() == b[0].tolist()
