"""Tests for timeline recording and rendering."""

import numpy as np
import pytest

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.strategies import plan_da, plan_fra
from repro.sim.query_sim import simulate_query
from repro.sim.timeline import render_timeline, utilization

from helpers import make_problem

MACHINE = MachineConfig(n_procs=3, memory_per_proc=1 << 20)
COSTS = ComputeCosts.from_ms(1, 5, 1, 1)


@pytest.fixture
def result(rng):
    prob = make_problem(rng, n_procs=3, n_in=60, n_out=8, memory=1 << 20)
    return simulate_query(plan_fra(prob), MACHINE, COSTS, record_timeline=True)


class TestRecording:
    def test_timelines_present_only_when_requested(self, rng):
        prob = make_problem(rng, n_procs=3)
        plain = simulate_query(plan_fra(prob), MACHINE, COSTS)
        assert plain.timelines is None
        recorded = simulate_query(plan_fra(prob), MACHINE, COSTS, record_timeline=True)
        assert recorded.timelines is not None

    def test_intervals_cover_busy_time(self, result):
        for name, intervals in result.timelines.items():
            covered = sum(e - s for s, e in intervals)
            if name.startswith("cpu"):
                p = int(name[3:])
                assert covered == pytest.approx(result.cpu_busy[p])

    def test_intervals_disjoint_and_ordered(self, result):
        for intervals in result.timelines.values():
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= s2 + 1e-12
                assert s1 <= e1 and s2 <= e2

    def test_intervals_within_total_time(self, result):
        for intervals in result.timelines.values():
            for s, e in intervals:
                assert 0 <= s <= e <= result.total_time + 1e-9

    def test_recording_does_not_change_timing(self, rng):
        prob = make_problem(rng, n_procs=3)
        a = simulate_query(plan_da(prob), MACHINE, COSTS)
        b = simulate_query(plan_da(prob), MACHINE, COSTS, record_timeline=True)
        assert a.total_time == b.total_time


class TestRendering:
    def test_render_structure(self, result):
        text = render_timeline(result, width=40)
        lines = text.splitlines()
        assert "timeline:" in lines[0]
        # one row per resource kind per processor
        assert sum(1 for l in lines if "cpu |" in l) == 3
        assert sum(1 for l in lines if "disk |" in l) == 3
        row = next(l for l in lines if "cpu |" in l)
        assert row.count("|") == 2
        assert len(row.split("|")[1]) == 40

    def test_render_requires_timelines(self, rng):
        prob = make_problem(rng, n_procs=2)
        res = simulate_query(plan_fra(prob), MachineConfig(n_procs=2, memory_per_proc=1 << 20), COSTS)
        with pytest.raises(ValueError, match="record_timeline"):
            render_timeline(res)

    def test_render_proc_subset(self, result):
        text = render_timeline(result, width=20, procs=[1])
        assert "P1" in text and "P0" not in text

    def test_width_validation(self, result):
        with pytest.raises(ValueError):
            render_timeline(result, width=4)

    def test_busy_resources_show_marks(self, result):
        text = render_timeline(result, width=30)
        cpu_rows = [l for l in text.splitlines() if "cpu |" in l]
        assert any(set(r.split("|")[1]) - {" "} for r in cpu_rows)


class TestUtilization:
    def test_fractions_in_range(self, result):
        u = utilization(result)
        assert set(u) == {"disk", "cpu", "out", "in"}
        assert all(0 <= v <= 1.0 + 1e-9 for v in u.values())

    def test_cpu_bound_workload(self, rng):
        prob = make_problem(rng, n_procs=3)
        heavy = ComputeCosts.from_ms(1, 50, 1, 1)
        res = simulate_query(plan_fra(prob), MACHINE, heavy, record_timeline=True)
        u = utilization(res)
        assert u["cpu"] > u["disk"]


class TestExport:
    def test_records_schema_and_order(self, result):
        from repro.sim.timeline import timeline_records

        records = timeline_records(result)
        assert records, "expected busy intervals"
        assert set(records[0]) == {"proc", "kind", "start", "end"}
        for a, b in zip(records, records[1:]):
            assert (a["proc"], a["kind"], a["start"]) <= (
                b["proc"], b["kind"], b["start"]
            )

    def test_csv_roundtrip(self, result, tmp_path):
        import csv

        from repro.sim.timeline import timeline_records, write_timeline_csv

        path = tmp_path / "timeline.csv"
        n = write_timeline_csv(result, path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == n == len(timeline_records(result))
        assert float(rows[0]["end"]) >= float(rows[0]["start"])

    def test_export_requires_recording(self, rng):
        from repro.sim.timeline import timeline_records

        prob = make_problem(rng, n_procs=2)
        res = simulate_query(
            plan_fra(prob), MachineConfig(n_procs=2, memory_per_proc=1 << 20), COSTS
        )
        with pytest.raises(ValueError):
            timeline_records(res)
