"""Tests for asynchronous per-processor tile progression.

Figure 6 gives DA per-processor tile counters; ``sync_tiles=False``
simulates that literal semantics, replacing the global per-tile phase
barriers with the message-count waits the data itself imposes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.strategies import plan_fra, plan_query
from repro.sim.query_sim import simulate_query

from helpers import make_problem

COSTS = ComputeCosts.from_ms(1, 5, 2, 1)
MACHINE = MachineConfig(n_procs=4, memory_per_proc=200_000)


def run_both(prob, strategy):
    plan = plan_query(prob, strategy)
    machine = MachineConfig(n_procs=prob.n_procs, memory_per_proc=200_000)
    sync = simulate_query(plan, machine, COSTS)
    asyn = simulate_query(plan, machine, COSTS, sync_tiles=False)
    return sync, asyn


@pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA", "HYBRID"])
class TestConservation:
    def test_same_traffic_and_work(self, rng, strategy):
        prob = make_problem(rng, n_procs=4, n_in=100, n_out=14, memory=200_000)
        sync, asyn = run_both(prob, strategy)
        assert asyn.read_bytes.tolist() == sync.read_bytes.tolist()
        assert asyn.sent_bytes.tolist() == sync.sent_bytes.tolist()
        assert asyn.recv_bytes.tolist() == sync.recv_bytes.tolist()
        np.testing.assert_allclose(asyn.cpu_busy, sync.cpu_busy)
        np.testing.assert_allclose(asyn.disk_busy.sum(), sync.disk_busy.sum())

    def test_async_not_slower(self, rng, strategy):
        """Dropping barriers can only relax the schedule (same work,
        fewer ordering constraints), up to FIFO reordering noise."""
        prob = make_problem(rng, n_procs=4, n_in=100, n_out=14, memory=200_000)
        sync, asyn = run_both(prob, strategy)
        assert asyn.total_time <= 1.05 * sync.total_time


class TestSemantics:
    def test_single_tile_bounded_by_sync_and_critical_path(self, rng):
        # Even with one tile, async drops the LR/GC/OH phase barriers
        # (a processor ships ghosts while others still reduce), so it
        # may finish earlier -- but never below the busiest processor's
        # own work, and never above the fully barriered schedule.
        prob = make_problem(rng, n_procs=3, memory=1 << 40)
        sync, asyn = run_both(prob, "FRA")
        assert sync.n_tiles == 1
        assert asyn.total_time <= 1.02 * sync.total_time
        assert asyn.total_time >= asyn.cpu_busy.max()

    def test_deterministic(self, rng):
        prob = make_problem(rng, n_procs=3)
        plan = plan_fra(prob)
        m = MachineConfig(n_procs=3, memory_per_proc=1 << 20)
        a = simulate_query(plan, m, COSTS, sync_tiles=False)
        b = simulate_query(plan, m, COSTS, sync_tiles=False)
        assert a.total_time == b.total_time

    def test_phase_times_undefined(self, rng):
        prob = make_problem(rng, n_procs=3)
        res = simulate_query(plan_fra(prob), MachineConfig(n_procs=3, memory_per_proc=1 << 20), COSTS, sync_tiles=False)
        assert all(v == 0.0 for v in res.phase_times.values())

    def test_init_from_output_unsupported(self, rng):
        prob = make_problem(rng, n_procs=3)
        prob.init_from_output = True
        plan = plan_fra(prob)
        with pytest.raises(NotImplementedError):
            simulate_query(plan, MachineConfig(n_procs=3, memory_per_proc=1 << 20), COSTS, sync_tiles=False)

    def test_empty_problemish_tiles(self, rng):
        # single output chunk, one processor
        prob = make_problem(rng, n_procs=1, n_in=5, n_out=1, memory=1 << 20)
        _, asyn = run_both(prob, "DA")
        assert asyn.total_time > 0


@given(seed=st.integers(0, 2**31), strategy=st.sampled_from(["FRA", "DA"]))
@settings(max_examples=15, deadline=None)
def test_property_async_conserves_and_completes(seed, strategy):
    rng = np.random.default_rng(seed)
    n_procs = int(rng.integers(1, 5))
    prob = make_problem(
        rng, n_procs=n_procs,
        n_in=int(rng.integers(5, 60)),
        n_out=int(rng.integers(1, 12)),
        memory=int(rng.integers(60_000, 500_000)),
    )
    plan = plan_query(prob, strategy)
    m = MachineConfig(n_procs=n_procs, memory_per_proc=1 << 20)
    sync = simulate_query(plan, m, COSTS)
    asyn = simulate_query(plan, m, COSTS, sync_tiles=False)
    assert asyn.read_bytes.tolist() == sync.read_bytes.tolist()
    assert np.isclose(asyn.cpu_busy.sum(), sync.cpu_busy.sum())
    assert 0 < asyn.total_time <= 1.1 * sync.total_time
