"""Tests for the simulated initialization-from-output path (phase 1
retrieval + forwarding of existing output chunks)."""

import numpy as np
import pytest

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.strategies import plan_da, plan_fra
from repro.sim.query_sim import simulate_query

from helpers import make_problem

MACHINE = MachineConfig(n_procs=3, memory_per_proc=1 << 20)
COSTS = ComputeCosts.from_ms(1, 5, 1, 1)


def paired_problems(rng):
    cold = make_problem(rng, n_procs=3, n_in=40, n_out=8, memory=1 << 20)
    warm = make_problem(
        np.random.default_rng(12345), n_procs=3, n_in=40, n_out=8, memory=1 << 20
    )
    warm.init_from_output = True
    return cold, warm


class TestInitFromOutput:
    def test_update_query_takes_longer(self, rng):
        cold, warm = paired_problems(rng)
        t_cold = simulate_query(plan_fra(cold), MACHINE, COSTS)
        t_warm = simulate_query(plan_fra(warm), MACHINE, COSTS)
        assert t_warm.phase_times["init"] > t_cold.phase_times["init"]
        assert t_warm.total_time > t_cold.total_time

    def test_extra_reads_are_the_output_chunks(self, rng):
        cold, warm = paired_problems(rng)
        r_cold = simulate_query(plan_fra(cold), MACHINE, COSTS)
        r_warm = simulate_query(plan_fra(warm), MACHINE, COSTS)
        extra = r_warm.read_bytes.sum() - r_cold.read_bytes.sum()
        assert extra == warm.outputs.nbytes.sum()

    def test_forwarding_to_ghost_holders_fra(self, rng):
        _, warm = paired_problems(rng)
        plan = plan_fra(warm)
        res = simulate_query(plan, MACHINE, COSTS)
        # init forwards output chunks owner -> every other holder, and
        # combine ships the same pairs back: sent bytes include both
        sent_plan, recv_plan = plan.comm_bytes_per_proc()
        assert res.sent_bytes.tolist() == sent_plan.tolist()
        assert res.recv_bytes.tolist() == recv_plan.tolist()
        assert len(plan.init_transfers) == len(plan.ghost_transfers)

    def test_da_update_has_no_init_forwarding(self, rng):
        _, warm = paired_problems(rng)
        plan = plan_da(warm)
        assert len(plan.init_transfers) == 0
        res = simulate_query(plan, MACHINE, COSTS)
        # still pays the owner-side output re-reads
        assert res.read_bytes.sum() > plan.total_read_bytes
