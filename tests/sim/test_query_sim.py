"""Tests for the query execution simulator.

The micro-scenarios have hand-computable exact times, which pins the
phase semantics (dependencies, pipelining, store-and-forward
messaging) rather than just "some number came out".
"""

import numpy as np
import pytest

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_da, plan_fra, plan_query
from repro.sim.query_sim import simulate_query

from helpers import make_problem


def micro_problem(
    n_procs=1,
    in_bytes=(1000,),
    in_owner=(0,),
    out_bytes=(500,),
    out_owner=(0,),
    edges=((0, 0),),
    acc_bytes=None,
    memory=1 << 30,
):
    n_in, n_out = len(in_bytes), len(out_bytes)
    in_los = np.arange(n_in, dtype=float)[:, None] * np.ones(2)
    out_los = np.arange(n_out, dtype=float)[:, None] * np.ones(2)
    inputs = ChunkSet(
        in_los, in_los + 0.5, np.asarray(in_bytes, dtype=np.int64),
        node=np.asarray(in_owner, dtype=np.int32), disk=np.zeros(n_in, dtype=np.int32),
    )
    outputs = ChunkSet(
        out_los, out_los + 0.5, np.asarray(out_bytes, dtype=np.int64),
        node=np.asarray(out_owner, dtype=np.int32), disk=np.zeros(n_out, dtype=np.int32),
    )
    e_in = np.asarray([e[0] for e in edges], dtype=np.int64)
    e_out = np.asarray([e[1] for e in edges], dtype=np.int64)
    graph = ChunkGraph(n_in, n_out, e_in, e_out)
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=np.asarray(acc_bytes, dtype=np.int64) if acc_bytes else None,
    )


MACHINE = MachineConfig(
    n_procs=1,
    memory_per_proc=1 << 30,
    disk_bandwidth=1000.0,  # 1000 B/s: times read directly off byte counts
    disk_seek=0.5,
    link_bandwidth=2000.0,
    link_latency=0.25,
)
COSTS = ComputeCosts(init=0.1, reduction=2.0, combine=0.3, output=0.7)


class TestExactTimes:
    def test_single_proc_single_chunk(self):
        prob = micro_problem()
        plan = plan_fra(prob)
        res = simulate_query(plan, MACHINE, COSTS)
        # init 0.1; LR: seek 0.5 + 1000/1000 + reduce 2.0; GC none;
        # OH: 0.7 cpu + seek 0.5 + 500/1000 write
        expected = 0.1 + (0.5 + 1.0 + 2.0) + (0.7 + 0.5 + 0.5)
        assert res.total_time == pytest.approx(expected)
        assert res.phase_times["init"] == pytest.approx(0.1)
        assert res.phase_times["reduction"] == pytest.approx(3.5)
        assert res.phase_times["combine"] == pytest.approx(0.0)
        assert res.phase_times["output"] == pytest.approx(1.7)

    def test_pipelining_overlaps_read_and_compute(self):
        # Two chunks: reads serialize on the disk; compute of chunk 1
        # overlaps the read of chunk 2.
        prob = micro_problem(in_bytes=(1500, 1500), in_owner=(0, 0),
                             edges=((0, 0), (1, 0)))
        plan = plan_fra(prob)
        res = simulate_query(plan, MACHINE, COSTS)
        read = 0.5 + 1.5
        # LR = read1 + read2 + compute2 (compute1 hidden under read2)
        assert res.phase_times["reduction"] == pytest.approx(2 * read + 2.0)

    def test_overlap_false_serializes_reads_before_compute(self):
        prob = micro_problem(in_bytes=(1500, 1500), in_owner=(0, 0),
                             edges=((0, 0), (1, 0)))
        plan = plan_fra(prob)
        res = simulate_query(plan, MACHINE, COSTS, overlap=False)
        read = 0.5 + 1.5
        assert res.phase_times["reduction"] == pytest.approx(2 * read + 2 * 2.0)

    def test_da_remote_forwarding_chain(self):
        # Input on proc 0, output owned by proc 1: read, send, receive,
        # reduce at 1.
        prob = micro_problem(
            n_procs=2, in_owner=(0,), out_owner=(1,), in_bytes=(1000,)
        )
        plan = plan_da(prob)
        machine = MachineConfig(
            n_procs=2, memory_per_proc=1 << 30,
            disk_bandwidth=1000.0, disk_seek=0.5,
            link_bandwidth=2000.0, link_latency=0.25,
        )
        res = simulate_query(plan, machine, COSTS)
        lr = (0.5 + 1.0) + 0.5 + 0.25 + 0.5 + 2.0  # read, out-chan, latency, in-chan, reduce
        oh = 0.7 + 0.5 + 0.5
        assert res.total_time == pytest.approx(0.1 + lr + oh)
        assert res.sent_bytes.tolist() == [1000, 0]
        assert res.recv_bytes.tolist() == [0, 1000]

    def test_fra_ghost_combine_chain(self):
        # Two procs; input lives on proc 1 but output owned by proc 0:
        # FRA reduces on 1 into a ghost, then ships acc (800 B) to 0.
        prob = micro_problem(
            n_procs=2, in_owner=(1,), out_owner=(0,), acc_bytes=(800,)
        )
        plan = plan_fra(prob)
        machine = MachineConfig(
            n_procs=2, memory_per_proc=1 << 30,
            disk_bandwidth=1000.0, disk_seek=0.5,
            link_bandwidth=2000.0, link_latency=0.25,
        )
        res = simulate_query(plan, machine, COSTS)
        init = 0.1  # both procs initialize in parallel
        lr = 0.5 + 1.0 + 2.0
        gc = 0.4 + 0.25 + 0.4 + 0.3  # 800 B both channels + combine
        oh = 0.7 + 0.5 + 0.5
        assert res.total_time == pytest.approx(init + lr + gc + oh)
        assert res.phase_times["combine"] == pytest.approx(gc)


class TestConservation:
    @pytest.mark.parametrize("name", ["FRA", "SRA", "DA", "HYBRID"])
    def test_bytes_match_plan(self, rng, name):
        prob = make_problem(rng, n_procs=4, n_in=60, n_out=10, memory=300_000)
        plan = plan_query(prob, name)
        machine = MachineConfig(n_procs=4, memory_per_proc=300_000)
        res = simulate_query(plan, machine, ComputeCosts.from_ms(1, 5, 1, 1))
        assert res.read_bytes.sum() == plan.total_read_bytes
        sent, recv = plan.comm_bytes_per_proc()
        assert res.sent_bytes.tolist() == sent.tolist()
        assert res.recv_bytes.tolist() == recv.tolist()

    def test_proc_count_mismatch_rejected(self, rng):
        prob = make_problem(rng, n_procs=4)
        plan = plan_fra(prob)
        with pytest.raises(ValueError, match="processors"):
            simulate_query(plan, MachineConfig(n_procs=2, memory_per_proc=1 << 20), COSTS)


class TestJitter:
    def make(self, rng, sigma):
        prob = make_problem(rng, n_procs=4, n_in=80, n_out=8, memory=400_000)
        plan = plan_fra(prob)
        machine = MachineConfig(n_procs=4, memory_per_proc=400_000, io_jitter=sigma)
        return plan, machine

    def test_seed_reproducible(self, rng):
        plan, machine = self.make(rng, 0.5)
        a = simulate_query(plan, machine, COSTS, seed=7).total_time
        b = simulate_query(plan, machine, COSTS, seed=7).total_time
        assert a == b

    def test_different_seeds_differ(self, rng):
        plan, machine = self.make(rng, 0.5)
        a = simulate_query(plan, machine, COSTS, seed=1).total_time
        b = simulate_query(plan, machine, COSTS, seed=2).total_time
        assert a != b

    def test_zero_jitter_deterministic_across_seeds(self, rng):
        plan, machine = self.make(rng, 0.0)
        a = simulate_query(plan, machine, COSTS, seed=1).total_time
        b = simulate_query(plan, machine, COSTS, seed=2).total_time
        assert a == b

    def test_jitter_slows_io_bound_runs_on_average(self, rng):
        # With zero compute cost the run is disk-bound, so the max over
        # parallel jittered disks exceeds the jitter-free time.
        import dataclasses

        plan, machine0 = self.make(rng, 0.0)
        zero = ComputeCosts(0, 0, 0, 0)
        base = simulate_query(plan, machine0, zero).total_time
        machine1 = dataclasses.replace(machine0, io_jitter=1.0)
        times = [simulate_query(plan, machine1, zero, seed=s).total_time for s in range(5)]
        assert np.mean(times) > base


class TestOverlapAblation:
    @pytest.mark.parametrize("name", ["FRA", "DA"])
    def test_overlap_never_slower(self, rng, name):
        prob = make_problem(rng, n_procs=4, n_in=100, n_out=10, memory=300_000)
        plan = plan_query(prob, name)
        machine = MachineConfig(n_procs=4, memory_per_proc=300_000)
        costs = ComputeCosts.from_ms(1, 5, 1, 1)
        with_overlap = simulate_query(plan, machine, costs).total_time
        without = simulate_query(plan, machine, costs, overlap=False).total_time
        assert with_overlap <= without + 1e-9


class TestResultObject:
    def test_row_and_metrics(self, rng):
        prob = make_problem(rng, n_procs=2)
        plan = plan_fra(prob)
        machine = MachineConfig(n_procs=2, memory_per_proc=1 << 20)
        res = simulate_query(plan, machine, COSTS)
        assert "FRA" in res.row()
        assert res.computation_time >= res.computation_time_mean >= 0
        assert res.comm_volume_per_proc >= 0
        assert res.n_tiles == plan.n_tiles
