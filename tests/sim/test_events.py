"""Tests for the discrete-event core."""

import pytest

from repro.sim.events import Barrier, Resource, Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(2.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(3.0, lambda: log.append("c"))
        assert sim.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_submission_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.at(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5.0, lambda: sim.at(1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(2.0, lambda: sim.after(3.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [5.0]

    def test_event_limit_guard(self):
        sim = Simulator()

        def forever():
            sim.after(1.0, forever)

        sim.after(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            sim.run(max_events=100)

    def test_empty_run(self):
        assert Simulator().run() == 0.0


class TestResource:
    def test_fifo_serialization(self):
        sim = Simulator()
        r = Resource(sim, "disk")
        done = []
        r.submit(2.0, lambda: done.append(sim.now))
        r.submit(3.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [2.0, 5.0]
        assert r.busy_time == 5.0
        assert r.op_count == 2

    def test_parallel_resources_overlap(self):
        sim = Simulator()
        a, b = Resource(sim), Resource(sim)
        done = []
        a.submit(2.0, lambda: done.append(("a", sim.now)))
        b.submit(2.0, lambda: done.append(("b", sim.now)))
        total = sim.run()
        assert total == 2.0
        assert sorted(done) == [("a", 2.0), ("b", 2.0)]

    def test_submit_from_callback(self):
        sim = Simulator()
        r = Resource(sim)
        done = []
        r.submit(1.0, lambda: r.submit(1.0, lambda: done.append(sim.now)))
        sim.run()
        assert done == [2.0]

    def test_zero_duration(self):
        sim = Simulator()
        r = Resource(sim)
        done = []
        r.submit(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Resource(Simulator()).submit(-1.0)

    def test_queue_depth(self):
        sim = Simulator()
        r = Resource(sim)
        r.submit(1.0)
        r.submit(1.0)
        assert r.queue_depth == 2


class TestBarrier:
    def test_fires_after_count(self):
        sim = Simulator()
        fired = []
        b = Barrier(sim, 3, lambda: fired.append(sim.now))
        r = Resource(sim)
        for _ in range(3):
            r.submit(1.0, b.hit)
        sim.run()
        assert fired == [3.0]

    def test_zero_count_fires_immediately(self):
        sim = Simulator()
        fired = []
        Barrier(sim, 0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_over_hit_rejected(self):
        sim = Simulator()
        b = Barrier(sim, 1, lambda: None)
        b.hit()
        with pytest.raises(RuntimeError):
            b.hit()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            Barrier(Simulator(), -1, lambda: None)
