"""Tests for the serial reference executor."""

import numpy as np
import pytest

from repro.aggregation.functions import MeanAggregation, SumAggregation
from repro.aggregation.output_grid import OutputGrid
from repro.dataset.chunk import Chunk
from repro.runtime.serial import execute_serial, map_chunk_to_cells
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import GridMapping

from helpers import make_functional_setup


class TestMapChunkToCells:
    def test_no_footprint_one_cell_per_item(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        item_idx, cells = map_chunk_to_cells(chunks[0], mapping, grid)
        assert len(item_idx) == chunks[0].n_items
        assert item_idx.tolist() == list(range(chunks[0].n_items))

    def test_footprint_fans_out(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(
            rng, footprint=(0.1, 0.1)
        )
        item_idx, cells = map_chunk_to_cells(chunks[0], mapping, grid)
        assert len(item_idx) > chunks[0].n_items


class TestExecuteSerial:
    def test_mean_against_manual_numpy(self, rng):
        """Hand-rolled per-cell mean over the raw items must match."""
        in_space = AttributeSpace.regular("in", ("x", "y"), (0, 0), (1, 1))
        out_space = AttributeSpace.regular("out", ("u", "v"), (0, 0), (1, 1))
        coords = rng.uniform(0, 1, size=(300, 2))
        values = rng.integers(0, 50, size=300).astype(float)
        chunk = Chunk.from_items(0, coords, values)
        grid = OutputGrid(out_space, (4, 4), (2, 2))
        mapping = GridMapping(in_space, out_space, (4, 4))
        result = execute_serial([chunk], mapping, grid, MeanAggregation(1))

        # manual binning
        cells = np.clip((coords * 4).astype(int), 0, 3)
        expected = np.full((4, 4), np.nan)
        for cx in range(4):
            for cy in range(4):
                mask = (cells[:, 0] == cx) & (cells[:, 1] == cy)
                if mask.any():
                    expected[cx, cy] = values[mask].mean()
        full = grid.assemble([result[c] for c in range(grid.n_chunks)])[:, :, 0]
        np.testing.assert_allclose(full, expected)

    def test_restricted_outputs(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        result = execute_serial(
            chunks, mapping, grid, SumAggregation(1), output_ids=np.array([0, 3])
        )
        assert set(result) == {0, 3}

    def test_sum_conserves_total(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        result = execute_serial(chunks, mapping, grid, SumAggregation(1))
        total_out = sum(v.sum() for v in result.values())
        total_in = sum(c.values.sum() for c in chunks)
        assert total_out == pytest.approx(total_in)

    def test_bad_output_ids(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        with pytest.raises(ValueError):
            execute_serial(chunks, mapping, grid, SumAggregation(1),
                           output_ids=np.array([999]))
