"""Tests for the unified phase pipeline (:mod:`repro.runtime.phases`).

One :class:`PhaseExecutor` serves every backend; these tests pin the
cross-backend contract: {sequential, parallel} x {prefetch off, on}
agree bit for bit -- values, counters and ``phase_times`` key set --
and the simulator prices literally the same :class:`PhaseSchedule`
arrays the functional backends execute.
"""

import numpy as np
import pytest

from repro.aggregation.functions import MeanAggregation, SumAggregation
from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.decluster.hilbert import HilbertDeclusterer
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_query
from repro.runtime.engine import execute_plan
from repro.runtime.phases import PHASES, PhaseSchedule
from repro.store.prefetch import PrefetchPolicy

from helpers import SMALL_COSTS, make_functional_setup, small_machine

COUNTERS = ("n_reads", "bytes_read", "n_aggregations", "n_combines")


def build_problem(chunks, mapping, grid, spec, n_procs, memory):
    inputs = ChunkSet.from_metas([c.meta for c in chunks])
    decl = HilbertDeclusterer()
    inputs = decl.place(inputs, n_procs)
    outputs = decl.place(grid.chunkset(), n_procs)
    graph = ChunkGraph.from_geometry(inputs, outputs, mapping)
    acc = np.asarray(
        [spec.acc_bytes(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)],
        dtype=np.int64,
    )
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=acc,
    )


@pytest.fixture
def workload(rng):
    spec = MeanAggregation(1)
    _, _, chunks, mapping, grid = make_functional_setup(rng)
    prob = build_problem(chunks, mapping, grid, spec, n_procs=3, memory=256)
    return chunks, mapping, grid, spec, prob


class TestBackendEquivalence:
    """The tentpole invariant: hosting and read-ahead are invisible."""

    @pytest.mark.parametrize("strategy", ["FRA", "DA"])
    @pytest.mark.parametrize(
        "backend,prefetch",
        [
            ("sequential", True),
            ("parallel", False),
            ("parallel", PrefetchPolicy(depth=3, workers=2)),
        ],
        ids=["seq+prefetch", "parallel", "parallel+prefetch"],
    )
    def test_bitwise_equal(self, workload, strategy, backend, prefetch):
        chunks, mapping, grid, spec, prob = workload
        plan = plan_query(prob, strategy)
        assert plan.n_tiles > 1  # memory chosen to force real tiling
        seq = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        res = execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec,
            backend=backend, prefetch=prefetch,
        )
        assert res.output_ids.tolist() == seq.output_ids.tolist()
        for o, rv, sv in zip(seq.output_ids, res.chunk_values, seq.chunk_values):
            assert np.array_equal(rv, sv, equal_nan=True), f"chunk {int(o)}"
        for counter in COUNTERS:
            assert getattr(res, counter) == getattr(seq, counter), counter
        assert sorted(res.phase_times) == sorted(PHASES)
        assert sorted(seq.phase_times) == sorted(PHASES)


class TestPhaseSchedule:
    def test_cached_on_plan(self, workload):
        *_, prob = workload
        plan = plan_query(prob, "FRA")
        assert plan.schedule() is plan.schedule()

    def test_tile_slices_and_tallies(self, workload):
        chunks, mapping, grid, spec, prob = workload
        plan = plan_query(prob, "SRA")
        sched = plan.schedule()
        assert isinstance(sched, PhaseSchedule)
        # cu arrays are tile-sorted and sliced by cu_bounds.
        assert np.all(np.diff(sched.cu_tile) >= 0)
        assert sched.cu_bounds[0] == 0 and sched.cu_bounds[-1] == len(sched.cu_tile)
        assert int(sched.cu_pairs.sum()) == len(plan.edge_arrays[0])
        # init_counts tallies every holder (owner + ghosts) once.
        assert int(sched.init_counts.sum()) == len(plan.holders_ids)
        # Every scheduled read appears in exactly one tile's slice.
        got = np.concatenate(
            [sched.reads_of(t) for t in range(plan.n_tiles)]
        )
        assert sorted(got.tolist()) == list(range(len(plan.reads)))

    def test_recipients_match_edge_assignment(self, workload):
        chunks, mapping, grid, spec, prob = workload
        plan = plan_query(prob, "DA")
        sched = plan.schedule()
        reads = plan.reads
        fwd_indptr, fwd_ids = prob.graph.forward_csr
        assert len(sched.recipients) == len(reads)
        for r in range(len(reads)):
            i = int(reads.chunk[r])
            lo, hi = fwd_indptr[i], fwd_indptr[i + 1]
            active = plan.tile_of_output[fwd_ids[lo:hi]] == int(reads.tile[r])
            want = set(np.unique(plan.edge_proc[lo:hi][active]).tolist())
            want.discard(int(reads.proc[r]))
            assert set(sched.recipients[r].tolist()) == want


class TestSimulatorSharesSchedule:
    def test_sim_prices_the_executed_schedule(self, workload):
        from repro.sim.query_sim import _QuerySim

        chunks, mapping, grid, spec, prob = workload
        plan = plan_query(prob, "FRA")
        sim = _QuerySim(
            plan, small_machine(n_procs=prob.n_procs), SMALL_COSTS,
            seed=0, overlap=True,
        )
        sched = plan.schedule()
        # Identity, not equality: the simulator walks the very arrays
        # the functional backends execute.
        assert sim.cu_tile is sched.cu_tile
        assert sim.cu_pairs is sched.cu_pairs
        assert sim.init_counts is sched.init_counts
        assert sim.gt_bounds is sched.tiles.gt_bounds
        assert sim.oh_bounds is sched.tiles.out_bounds


class TestCounterContract:
    def test_sequential_counters(self, workload):
        chunks, mapping, grid, spec, prob = workload
        plan = plan_query(prob, "FRA")
        res = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        assert res.n_reads == len(plan.reads)
        per_read = prob.inputs.nbytes[plan.reads.chunk]
        assert res.bytes_read == int(per_read.sum())
        assert res.n_combines == len(plan.ghost_transfers.tile)
        assert res.completeness == 1.0 and not res.chunk_errors

    def test_spec_without_prereduce_matches_too(self, workload):
        # SumAggregation exercises the prereduce/scatter path,
        # MeanAggregation the aggregate_grouped path; both must agree
        # across backends (covered above) and count identically here.
        chunks, mapping, grid, _, prob = workload
        spec = SumAggregation(1)
        plan = plan_query(prob, "FRA")
        seq = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        par = execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec, backend="parallel"
        )
        for counter in COUNTERS:
            assert getattr(par, counter) == getattr(seq, counter), counter
