"""The multiprocess backend vs the sequential backend.

``backend="parallel"`` runs the plan with real worker processes,
shared-memory accumulators and queue-based ghost transfers, but shares
the fused kernels and the tile schedule with the sequential backend --
so its results (and its work counters) must match **bit for bit**, not
just within tolerance.
"""

import numpy as np
import pytest

from repro.aggregation.functions import MeanAggregation, SumAggregation
from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.decluster.hilbert import HilbertDeclusterer
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_query
from repro.runtime.engine import execute_plan

from helpers import make_chunkset, make_functional_setup

COUNTERS = ("n_reads", "bytes_read", "n_aggregations", "n_combines")


def build_problem(chunks, mapping, grid, spec, n_procs, memory):
    """Geometry-derived problem over payload chunks (as in test_engine)."""
    inputs = ChunkSet.from_metas([c.meta for c in chunks])
    decl = HilbertDeclusterer()
    inputs = decl.place(inputs, n_procs)
    outputs = decl.place(grid.chunkset(), n_procs)
    graph = ChunkGraph.from_geometry(inputs, outputs, mapping)
    acc = np.asarray(
        [spec.acc_bytes(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)],
        dtype=np.int64,
    )
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=acc,
    )


def run_both(chunks, mapping, grid, spec, strategy, n_procs=3, memory=1 << 11):
    prob = build_problem(chunks, mapping, grid, spec, n_procs, memory)
    plan = plan_query(prob, strategy)
    seq = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
    par = execute_plan(
        plan, lambda i: chunks[i], mapping, grid, spec, backend="parallel"
    )
    return plan, seq, par


def assert_bitwise_equal(seq, par):
    np.testing.assert_array_equal(par.output_ids, seq.output_ids)
    for pv, sv in zip(par.chunk_values, seq.chunk_values):
        assert np.array_equal(pv, sv, equal_nan=True)
    for name in COUNTERS:
        assert getattr(par, name) == getattr(seq, name), name


@pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA", "HYBRID"])
class TestParallelBitwiseEqual:
    def test_sum(self, rng, strategy):
        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=250)
        _, seq, par = run_both(chunks, mapping, grid, SumAggregation(1), strategy)
        assert_bitwise_equal(seq, par)


class TestParallelNaNAndTiling:
    def test_mean_with_empty_cells(self, rng):
        """Mean leaves NaN in untouched cells; equal_nan comparison must
        still be bitwise across the process boundary."""
        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=250)
        _, seq, par = run_both(chunks, mapping, grid, MeanAggregation(1), "FRA")
        assert any(np.isnan(v).any() for v in seq.chunk_values)
        assert_bitwise_equal(seq, par)

    def test_forced_tiling(self, rng):
        """A 256-byte budget forces multi-tile plans; ghost transfers go
        over real queues and must still land bit-for-bit."""
        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=250)
        plan, seq, par = run_both(
            chunks, mapping, grid, SumAggregation(1), "FRA", memory=256
        )
        assert plan.n_tiles > 1
        assert_bitwise_equal(seq, par)


class TestBackendSelection:
    def test_unknown_backend(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=100)
        spec = SumAggregation(1)
        prob = build_problem(chunks, mapping, grid, spec, 2, 1 << 14)
        plan = plan_query(prob, "FRA")
        with pytest.raises(ValueError, match="unknown backend"):
            execute_plan(plan, lambda i: chunks[i], mapping, grid, spec,
                         backend="threads")

    def test_race_detection_rejected_on_parallel(self, rng):
        from repro.analysis.races import RaceDetector

        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=100)
        spec = SumAggregation(1)
        prob = build_problem(chunks, mapping, grid, spec, 2, 1 << 14)
        plan = plan_query(prob, "FRA")
        with pytest.raises(ValueError, match="sequential backend"):
            execute_plan(plan, lambda i: chunks[i], mapping, grid, spec,
                         backend="parallel", detect_races=True)
        with pytest.raises(ValueError, match="sequential backend"):
            execute_plan(plan, lambda i: chunks[i], mapping, grid, spec,
                         backend="parallel", race_detector=RaceDetector(plan))

    def test_env_race_flag_ignored_on_parallel(self, rng, monkeypatch):
        """REPRO_DETECT_RACES=1 (the CI default) must not break the
        parallel backend -- only an explicit request is an error."""
        monkeypatch.setenv("REPRO_DETECT_RACES", "1")
        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=100)
        _, seq, par = run_both(chunks, mapping, grid, SumAggregation(1), "FRA",
                               n_procs=2)
        assert_bitwise_equal(seq, par)


class TestParallelFailureModes:
    def test_worker_error_propagates(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=100)
        spec = SumAggregation(1)
        prob = build_problem(chunks, mapping, grid, spec, 2, 1 << 14)
        plan = plan_query(prob, "FRA")

        def bad_provider(i):
            raise OSError(f"disk for chunk {i} is gone")

        with pytest.raises(RuntimeError, match="parallel worker"):
            execute_plan(plan, bad_provider, mapping, grid, spec,
                         backend="parallel")

    def test_empty_plan_short_circuits(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=100)
        spec = SumAggregation(1)
        prob = PlanningProblem(
            n_procs=2,
            memory_per_proc=np.int64(1 << 14),
            inputs=make_chunkset(rng, 0, placed_on=2),
            outputs=make_chunkset(rng, 0, placed_on=2),
            graph=ChunkGraph(0, 0, np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=np.int64)),
        )
        plan = plan_query(prob, "FRA")
        result = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec,
                              backend="parallel")
        assert result.chunk_values == [] and result.n_reads == 0
