"""Worker-crash recovery and degraded execution on the parallel backend.

The acceptance bar is the sequential backend: a recovered or degraded
parallel run must be **bit-identical** to the sequential run of the
same plan (values and work counters), never merely close.
"""

import numpy as np
import pytest

from repro.aggregation.functions import SumAggregation
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.planner.strategies import plan_query
from repro.runtime.engine import execute_plan
from repro.runtime.parallel import RecoveryPolicy
from repro.store.format import CorruptChunkError

from helpers import make_functional_setup
from test_parallel import assert_bitwise_equal, build_problem

FAST_RECOVERY = RecoveryPolicy(
    max_restarts=2, inbox_timeout=10.0, poll_interval=0.1, grace_polls=5
)


def make_plan(rng, strategy, n_procs=3, memory=1 << 11, n_items=250):
    _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=n_items)
    spec = SumAggregation(1)
    prob = build_problem(chunks, mapping, grid, spec, n_procs, memory)
    return plan_query(prob, strategy), chunks, mapping, grid, spec


def run(plan, chunks, mapping, grid, spec, **kw):
    return execute_plan(plan, lambda i: chunks[i], mapping, grid, spec, **kw)


@pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA", "HYBRID"])
class TestCrashRecovery:
    def test_recovered_run_is_bit_identical(self, rng, strategy):
        plan, chunks, mapping, grid, spec = make_plan(rng, strategy)
        seq = run(plan, chunks, mapping, grid, spec)
        par = run(
            plan, chunks, mapping, grid, spec, backend="parallel",
            fault_injector=FaultInjector(FaultPlan.crash_worker(rank=1, after_reads=1)),
            recovery=FAST_RECOVERY,
        )
        assert_bitwise_equal(seq, par)
        assert par.completeness == 1.0 and par.chunk_errors == {}


class TestRecoveryModes:
    def test_immediate_crash_before_any_read(self, rng):
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA")
        seq = run(plan, chunks, mapping, grid, spec)
        par = run(
            plan, chunks, mapping, grid, spec, backend="parallel",
            fault_injector=FaultInjector(FaultPlan.crash_worker(rank=0, after_reads=0)),
            recovery=FAST_RECOVERY,
        )
        assert_bitwise_equal(seq, par)

    def test_single_process_crash_recovers(self, rng):
        """n_procs=1: the only worker dies; the retry re-hosts rank 0."""
        plan, chunks, mapping, grid, spec = make_plan(rng, "DA", n_procs=1)
        seq = run(plan, chunks, mapping, grid, spec)
        par = run(
            plan, chunks, mapping, grid, spec, backend="parallel",
            fault_injector=FaultInjector(FaultPlan.crash_worker(rank=0, after_reads=1)),
            recovery=FAST_RECOVERY,
        )
        assert_bitwise_equal(seq, par)

    def test_dropped_message_recovers(self, rng):
        """A lost forward message stalls a peer; its inbox timeout marks
        the attempt failed and the re-execution lands bit-identical."""
        plan, chunks, mapping, grid, spec = make_plan(rng, "SRA")
        seq = run(plan, chunks, mapping, grid, spec)
        par = run(
            plan, chunks, mapping, grid, spec, backend="parallel",
            fault_injector=FaultInjector(FaultPlan.drop_messages(message_kind="seg")),
            recovery=RecoveryPolicy(
                max_restarts=2, inbox_timeout=3.0, poll_interval=0.1, grace_polls=5
            ),
        )
        assert_bitwise_equal(seq, par)

    def test_restart_budget_exhausted(self, rng):
        """A crash scoped to every attempt (attempt=None) defeats
        recovery; the restart budget surfaces in the error."""
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA", n_items=100)
        always_crash = FaultPlan(
            (FaultSpec("worker_crash", rank=0, after_reads=0,
                       attempt=None, times=None),)
        )
        with pytest.raises(RuntimeError, match="restart"):
            run(
                plan, chunks, mapping, grid, spec, backend="parallel",
                fault_injector=FaultInjector(always_crash),
                recovery=RecoveryPolicy(
                    max_restarts=1, inbox_timeout=10.0,
                    poll_interval=0.1, grace_polls=5,
                ),
            )

    def test_zero_restart_budget_fails_fast(self, rng):
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA", n_items=100)
        with pytest.raises(RuntimeError, match="restart"):
            run(
                plan, chunks, mapping, grid, spec, backend="parallel",
                fault_injector=FaultInjector(
                    FaultPlan.crash_worker(rank=0, after_reads=0)
                ),
                recovery=RecoveryPolicy(
                    max_restarts=0, inbox_timeout=10.0,
                    poll_interval=0.1, grace_polls=5,
                ),
            )


class TestDegradedExecution:
    VICTIM = 0

    def test_sequential_degrade_reports_exact_chunk(self, rng):
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA")
        res = run(
            plan, chunks, mapping, grid, spec, on_error="degrade",
            fault_injector=FaultInjector(FaultPlan.corrupt_chunk(self.VICTIM)),
        )
        assert set(res.chunk_errors) == {self.VICTIM}
        assert "CorruptChunkError" in res.chunk_errors[self.VICTIM]
        assert res.completeness == pytest.approx(1.0 - 1.0 / len(chunks))

    @pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA", "HYBRID"])
    def test_degraded_backends_bit_identical(self, rng, strategy):
        plan, chunks, mapping, grid, spec = make_plan(rng, strategy)
        seq = run(
            plan, chunks, mapping, grid, spec, on_error="degrade",
            fault_injector=FaultInjector(FaultPlan.corrupt_chunk(self.VICTIM)),
        )
        par = run(
            plan, chunks, mapping, grid, spec, backend="parallel",
            on_error="degrade",
            fault_injector=FaultInjector(FaultPlan.corrupt_chunk(self.VICTIM)),
            recovery=FAST_RECOVERY,
        )
        assert_bitwise_equal(seq, par)
        assert par.chunk_errors == seq.chunk_errors
        assert par.completeness == seq.completeness < 1.0

    def test_degraded_counters_count_successes_only(self, rng):
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA")
        clean = run(plan, chunks, mapping, grid, spec)
        degraded = run(
            plan, chunks, mapping, grid, spec, on_error="degrade",
            fault_injector=FaultInjector(FaultPlan.corrupt_chunk(self.VICTIM)),
        )
        assert degraded.n_reads == clean.n_reads - 1
        assert degraded.bytes_read < clean.bytes_read

    def test_default_raise_propagates_corruption(self, rng):
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA")
        with pytest.raises(CorruptChunkError):
            run(
                plan, chunks, mapping, grid, spec,
                fault_injector=FaultInjector(FaultPlan.corrupt_chunk(self.VICTIM)),
            )

    def test_parallel_raise_fails_without_restart(self, rng):
        """Deterministic data errors are non-retryable: re-execution
        cannot heal a corrupt file, so the query fails on attempt 0."""
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA", n_items=100)
        with pytest.raises(RuntimeError, match="parallel worker"):
            run(
                plan, chunks, mapping, grid, spec, backend="parallel",
                fault_injector=FaultInjector(FaultPlan.corrupt_chunk(self.VICTIM)),
                recovery=FAST_RECOVERY,
            )

    def test_on_error_validation(self, rng):
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA", n_items=100)
        with pytest.raises(ValueError, match="on_error"):
            run(plan, chunks, mapping, grid, spec, on_error="shrug")

    def test_clean_run_reports_full_completeness(self, rng):
        plan, chunks, mapping, grid, spec = make_plan(rng, "FRA", n_items=100)
        res = run(plan, chunks, mapping, grid, spec)
        assert res.completeness == 1.0 and res.chunk_errors == {}
