"""Fused reduction kernels vs the preserved pre-fusion oracle.

Every fast path in :mod:`repro.runtime.kernels` and the
``aggregate_grouped``/``prereduce_groups`` spec hooks must reproduce
the scalar reference (`reference_segment_reduction`, the pre-fusion
engine loop kept verbatim) on arbitrary workloads.
"""

import numpy as np
import pytest

from repro.aggregation.functions import (
    AGGREGATIONS,
    BestValueComposite,
    CountAggregation,
    MeanAggregation,
    MinAggregation,
    SumAggregation,
)
from repro.runtime.kernels import (
    GridIndexer,
    RoutingCache,
    coerce_values,
    grid_indexer,
    group_read,
    reference_segment_reduction,
    route_chunk,
    routing_key,
)
from repro.runtime.serial import map_chunk_to_cells
from repro.space.mapping import GridMapping

from helpers import make_functional_setup


def specs():
    return [
        SumAggregation(1),
        CountAggregation(1),
        MinAggregation(2),
        MeanAggregation(2),
        BestValueComposite(2),
    ]


def run_reference(routed, grid, spec, sel_map, tile_of_output, tile, out_global):
    accs = {o: spec.initialize(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)}

    def aggregate(o, local_cells, values):
        spec.aggregate(accs[o], local_cells, values)

    for chunk, item_idx, cells in routed:
        reference_segment_reduction(
            item_idx, cells, chunk.values, grid, sel_map,
            tile_of_output, tile, out_global, aggregate,
        )
    return accs


def run_fused(routed, grid, spec, sel_map, tile_of_output, tile):
    accs = {o: spec.initialize(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)}
    indexer = grid_indexer(grid)
    for chunk, item_idx, cells in routed:
        values = coerce_values(chunk.values, spec.value_components)
        segs = group_read(
            item_idx, cells, values, grid, sel_map, tile_of_output, tile, indexer
        )
        if segs is None:
            continue
        reduced = spec.prereduce_groups(segs.values, segs.group_starts)
        if reduced is None:
            for k in range(len(segs.seg_out)):
                o = int(segs.seg_out[k])
                s, e = segs.starts[k], segs.ends[k]
                spec.aggregate_grouped(accs[o], segs.flat[s:e], segs.values[s:e])
        else:
            gflat = segs.flat[segs.group_starts]
            gb = segs.group_bounds
            for k in range(len(segs.seg_out)):
                o = int(segs.seg_out[k])
                spec.scatter_groups(
                    accs[o], gflat[gb[k] : gb[k + 1]], reduced[gb[k] : gb[k + 1]]
                )
    return accs


class TestFusedVsReference:
    @pytest.mark.parametrize("spec", specs(), ids=lambda s: type(s).__name__)
    @pytest.mark.parametrize("footprint", [None, (0.08, 0.05)], ids=["point", "fan"])
    def test_full_grid(self, rng, spec, footprint):
        _, _, chunks, mapping, grid = make_functional_setup(
            rng, value_components=spec.value_components, footprint=footprint
        )
        routed = [(c, *map_chunk_to_cells(c, mapping, grid, None)) for c in chunks]
        n = grid.n_chunks
        sel_map = np.arange(n, dtype=np.int64)
        tile_of_output = np.zeros(n, dtype=np.int64)
        out_global = np.arange(n, dtype=np.int64)
        ref = run_reference(routed, grid, spec, sel_map, tile_of_output, 0, out_global)
        fused = run_fused(routed, grid, spec, sel_map, tile_of_output, 0)
        for o in range(n):
            np.testing.assert_allclose(fused[o], ref[o])

    def test_tile_and_selection_filtering(self, rng):
        """Cells outside the selected outputs / current tile are dropped
        identically by both paths."""
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        n = grid.n_chunks
        # select half the outputs, spread over two tiles
        sel_map = np.full(n, -1, dtype=np.int64)
        picked = np.arange(0, n, 2, dtype=np.int64)
        sel_map[picked] = np.arange(len(picked))
        tile_of_output = np.arange(len(picked), dtype=np.int64) % 2
        out_global = picked
        routed = [(c, *map_chunk_to_cells(c, mapping, grid, None)) for c in chunks]
        for tile in (0, 1):
            accs_ref = {
                o: spec.initialize(grid.cells_in_chunk(int(out_global[o])))
                for o in range(len(picked))
            }

            def aggregate(o, local_cells, values):
                spec.aggregate(accs_ref[o], local_cells, values)

            for chunk, item_idx, cells in routed:
                reference_segment_reduction(
                    item_idx, cells, chunk.values, grid, sel_map,
                    tile_of_output, tile, out_global, aggregate,
                )
            accs_fused = {
                o: spec.initialize(grid.cells_in_chunk(int(out_global[o])))
                for o in range(len(picked))
            }
            indexer = grid_indexer(grid)
            for chunk, item_idx, cells in routed:
                values = coerce_values(chunk.values, 1)
                segs = group_read(
                    item_idx, cells, values, grid, sel_map, tile_of_output,
                    tile, indexer,
                )
                if segs is None:
                    continue
                for k in range(len(segs.seg_out)):
                    o = int(segs.seg_out[k])
                    s, e = segs.starts[k], segs.ends[k]
                    spec.aggregate_grouped(
                        accs_fused[o], segs.flat[s:e], segs.values[s:e]
                    )
            for o in accs_ref:
                np.testing.assert_allclose(accs_fused[o], accs_ref[o])

    def test_group_read_segments_are_sorted(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng, footprint=(0.1, 0.1))
        n = grid.n_chunks
        sel_map = np.arange(n, dtype=np.int64)
        tile_of_output = np.zeros(n, dtype=np.int64)
        chunk = chunks[0]
        item_idx, cells = map_chunk_to_cells(chunk, mapping, grid, None)
        values = coerce_values(chunk.values, 1)
        segs = group_read(item_idx, cells, values, grid, sel_map, tile_of_output, 0)
        assert segs is not None
        assert np.all(np.diff(segs.seg_out) > 0)
        for k in range(len(segs.seg_out)):
            s, e = segs.starts[k], segs.ends[k]
            assert np.all(np.diff(segs.flat[s:e]) >= 0)
        # cell runs tile the read and are strictly finer than segments
        assert segs.group_starts[0] == 0
        assert np.all(np.diff(segs.group_starts) > 0)
        assert segs.group_bounds[0] == 0
        assert segs.group_bounds[-1] == len(segs.group_starts)
        # run starts restricted to segment k stay inside [starts, ends)
        for k in range(len(segs.seg_out)):
            runs = segs.group_starts[segs.group_bounds[k] : segs.group_bounds[k + 1]]
            assert runs[0] == segs.starts[k]
            assert np.all(runs < segs.ends[k])
            # within a segment every run is one distinct cell
            assert np.all(np.diff(segs.flat[runs]) > 0)


class TestPrereduceMatchesGrouped:
    @pytest.mark.parametrize("name", ["sum", "count", "min", "max", "mean"])
    def test_bitwise_equal(self, rng, name):
        spec = AGGREGATIONS[name]()
        n_cells = 50
        m = 300
        cell_idx = np.sort(rng.integers(0, n_cells, size=m)).astype(np.int64)
        values = rng.normal(size=(m, spec.value_components))
        acc_a = spec.initialize(n_cells)
        spec.aggregate_grouped(acc_a, cell_idx, values)
        # one "read" = one segment: runs are the duplicate-cell runs
        run_starts = np.concatenate(([0], np.flatnonzero(np.diff(cell_idx)) + 1))
        reduced = spec.prereduce_groups(values, run_starts)
        assert reduced is not None
        acc_b = spec.initialize(n_cells)
        spec.scatter_groups(acc_b, cell_idx[run_starts], reduced)
        np.testing.assert_array_equal(acc_a, acc_b)

    def test_best_composite_has_no_prereduction(self):
        spec = BestValueComposite(2)
        assert spec.prereduce_groups(np.zeros((3, 2)), np.array([0])) is None

    def test_extra_aggregations_fall_back(self):
        """Aggregations without a pre-reduction (variance, wmean) keep
        the default None, which routes the engine onto the
        aggregate_grouped fallback."""
        for name in ("variance", "wmean"):
            spec = AGGREGATIONS[name]()
            assert spec.prereduce_groups(np.zeros((3, spec.value_components)),
                                         np.array([0])) is None


class TestGridIndexer:
    def test_matches_local_cell_index(self, rng):
        _, _, _, _, grid = make_functional_setup(rng, grid_cells=(7, 5),
                                                 chunk_cells=(3, 2))
        indexer = GridIndexer(grid)
        for cid in range(grid.n_chunks):
            start, stop = grid.chunk_block(cid)
            cells = np.stack(
                np.meshgrid(*[np.arange(a, b) for a, b in zip(start, stop)],
                            indexing="ij"),
                axis=-1,
            ).reshape(-1, grid.ndim)
            expected = grid.local_cell_index(cid, cells)
            got = indexer.flat_index(np.full(len(cells), cid, dtype=np.int64), cells)
            np.testing.assert_array_equal(got, expected)

    def test_cached_per_grid(self, rng):
        _, _, _, _, grid = make_functional_setup(rng)
        assert grid_indexer(grid) is grid_indexer(grid)


class TestCoerceValues:
    def test_promotes_1d(self):
        out = coerce_values(np.array([1, 2, 3]), 1)
        assert out.shape == (3, 1) and out.dtype == np.float64

    def test_component_mismatch(self):
        with pytest.raises(ValueError, match="value components"):
            coerce_values(np.zeros((4, 2)), 3)


class TestRoutingCache:
    def test_hit_and_miss_counters(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        cache = RoutingCache()
        a = route_chunk(chunks[0], mapping, grid, None, cache=cache, chunk_id=0)
        b = route_chunk(chunks[0], mapping, grid, None, cache=cache, chunk_id=0)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])
        assert cache.hits == 1 and cache.misses == 1
        # cached arrays are immutable
        with pytest.raises(ValueError):
            b[0][0] = 0

    def test_lru_eviction_by_bytes(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        item_idx, cells = map_chunk_to_cells(chunks[0], mapping, grid, None)
        entry_bytes = item_idx.nbytes + cells.nbytes
        cache = RoutingCache(max_bytes=2 * entry_bytes)
        for cid in range(3):
            key = routing_key(cid, mapping, grid, None)
            cache.put(key, item_idx, cells)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(routing_key(0, mapping, grid, None)) is None  # evicted LRU

    def test_invalidate_chunk_ids(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        cache = RoutingCache()
        route_chunk(chunks[0], mapping, grid, None, cache=cache, chunk_id=7)
        assert len(cache) == 1
        cache.invalidate_chunk_ids([7])
        assert len(cache) == 0 and cache.nbytes == 0

    def test_custom_mapping_not_cached(self, rng):
        _, _, chunks, mapping, grid = make_functional_setup(rng)

        class CustomMapping(GridMapping):
            pass

        custom = CustomMapping(
            mapping.input_space, mapping.output_space, mapping.grid_shape
        )
        assert routing_key(0, custom, grid, None) is None
        cache = RoutingCache()
        route_chunk(chunks[0], custom, grid, None, cache=cache, chunk_id=0)
        assert len(cache) == 0  # fell through, nothing cached

    def test_region_namespaces_key(self, rng):
        from repro.util.geometry import Rect

        _, _, _, mapping, grid = make_functional_setup(rng)
        k1 = routing_key(0, mapping, grid, None)
        k2 = routing_key(0, mapping, grid, Rect((0.0, 0.0), (5.0, 5.0)))
        assert k1 != k2
