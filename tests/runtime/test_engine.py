"""Tests for the parallel functional engine.

The headline invariant of the whole reproduction: for any workload,
the FRA, SRA, DA and hybrid executions produce the same answer as the
serial reference -- the planner moves work and data around but never
changes the result.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation.functions import (
    BestValueComposite,
    MaxAggregation,
    MeanAggregation,
    SumAggregation,
)
from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.decluster.hilbert import HilbertDeclusterer
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_query
from repro.planner.validate import validate_plan
from repro.runtime.engine import execute_plan
from repro.runtime.serial import execute_serial

from helpers import make_functional_setup


def build_problem(chunks, mapping, grid, spec, n_procs, memory, seed=0):
    """Assemble a geometry-derived problem over payload chunks."""
    metas = [c.meta for c in chunks]
    inputs = ChunkSet.from_metas(metas)
    decl = HilbertDeclusterer()
    inputs = decl.place(inputs, n_procs)
    outputs = decl.place(grid.chunkset(), n_procs)
    graph = ChunkGraph.from_geometry(inputs, outputs, mapping)
    acc = np.asarray(
        [spec.acc_bytes(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)],
        dtype=np.int64,
    )
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=acc,
    )


STRATEGIES = ["FRA", "SRA", "DA", "HYBRID"]
SPECS = [SumAggregation(1), MeanAggregation(1), MaxAggregation(1)]


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("spec", SPECS, ids=lambda s: type(s).__name__)
class TestStrategiesEqualSerial:
    def test_equal(self, rng, strategy, spec):
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        # ~72-byte accumulator chunks: a 256-byte budget forces tiling
        prob = build_problem(chunks, mapping, grid, spec, n_procs=3, memory=256)
        plan = plan_query(prob, strategy)
        validate_plan(plan)
        assert plan.n_tiles > 1  # memory chosen to force real tiling
        result = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        serial = execute_serial(chunks, mapping, grid, spec)
        assert set(result.output_ids.tolist()) == set(serial)
        for o, vals in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(vals, serial[int(o)], equal_nan=True)


class TestFootprintFanOut:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_fan_out_still_equal(self, rng, strategy):
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng, footprint=(0.08, 0.05))
        prob = build_problem(chunks, mapping, grid, spec, n_procs=4, memory=1 << 14)
        plan = plan_query(prob, strategy)
        result = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        serial = execute_serial(chunks, mapping, grid, spec)
        for o, vals in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(vals, serial[int(o)])


class TestBestValueComposite:
    @pytest.mark.parametrize("strategy", ["FRA", "DA"])
    def test_composite_equal(self, rng, strategy):
        spec = BestValueComposite(2)
        _, _, chunks, mapping, grid = make_functional_setup(rng, value_components=2)
        prob = build_problem(chunks, mapping, grid, spec, n_procs=3, memory=1 << 15)
        plan = plan_query(prob, strategy)
        result = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        serial = execute_serial(chunks, mapping, grid, spec)
        for o, vals in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(vals, serial[int(o)], equal_nan=True)


class TestCountersAndBookkeeping:
    def test_reads_match_plan(self, rng):
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = build_problem(chunks, mapping, grid, spec, n_procs=3, memory=1 << 14)
        plan = plan_query(prob, "FRA")
        result = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        assert result.n_reads == len(plan.reads)
        assert result.bytes_read == plan.total_read_bytes
        assert result.n_combines == len(plan.ghost_transfers)
        assert result.n_tiles == plan.n_tiles

    def test_da_has_no_combines(self, rng):
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = build_problem(chunks, mapping, grid, spec, n_procs=3, memory=1 << 14)
        result = execute_plan(
            plan_query(prob, "DA"), lambda i: chunks[i], mapping, grid, spec
        )
        assert result.n_combines == 0

    def test_enforce_memory_holds_budget(self, rng):
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = build_problem(chunks, mapping, grid, spec, n_procs=2, memory=1 << 14)
        plan = plan_query(prob, "DA")
        # must not raise: the tiling honoured the budget
        execute_plan(plan, lambda i: chunks[i], mapping, grid, spec, enforce_memory=True)

    def test_dataset_source(self, rng):
        from repro.dataset.dataset import Dataset
        from repro.space.attribute_space import AttributeSpace

        spec = SumAggregation(1)
        in_space, _, chunks, mapping, grid = make_functional_setup(rng)
        ds = Dataset.from_chunks("d", in_space, chunks)
        prob = build_problem(chunks, mapping, grid, spec, n_procs=2, memory=1 << 15)
        plan = plan_query(prob, "FRA")
        result = execute_plan(plan, ds, mapping, grid, spec)
        serial = execute_serial(chunks, mapping, grid, spec)
        for o, vals in zip(result.output_ids, result.chunk_values):
            np.testing.assert_allclose(vals, serial[int(o)])

    def test_bad_source_type(self, rng):
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = build_problem(chunks, mapping, grid, spec, n_procs=2, memory=1 << 15)
        plan = plan_query(prob, "FRA")
        with pytest.raises(TypeError):
            execute_plan(plan, "not chunks", mapping, grid, spec)

    def test_result_accessors(self, rng):
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = build_problem(chunks, mapping, grid, spec, n_procs=2, memory=1 << 15)
        result = execute_plan(plan_query(prob, "FRA"), lambda i: chunks[i], mapping, grid, spec)
        o = int(result.output_ids[0])
        np.testing.assert_array_equal(result.value_of(o), result.chunk_values[0])
        with pytest.raises(KeyError):
            result.value_of(10_000)
        full = result.assemble(grid)
        assert full.shape == grid.grid_shape + (1,)


class TestEmptyResults:
    """A query selecting nothing must assemble to an all-NaN grid,
    not crash on ``chunk_values[0]``."""

    def test_assemble_with_no_chunk_values(self, rng):
        from repro.runtime.engine import QueryResult

        _, _, _, _, grid = make_functional_setup(rng)
        empty = QueryResult(
            strategy="FRA",
            output_ids=np.empty(0, dtype=np.int64),
            chunk_values=[],
            n_tiles=0, n_reads=0, bytes_read=0, n_combines=0, n_aggregations=0,
        )
        full = empty.assemble(grid)
        assert full.shape == grid.grid_shape + (1,)
        assert np.isnan(full).all()

    def test_empty_problem_executes_and_assembles(self, rng):
        from helpers import make_chunkset

        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = PlanningProblem(
            n_procs=2,
            memory_per_proc=np.int64(1 << 14),
            inputs=make_chunkset(rng, 0, placed_on=2),
            outputs=make_chunkset(rng, 0, placed_on=2),
            graph=ChunkGraph(0, 0, np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=np.int64)),
        )
        plan = plan_query(prob, "FRA")
        result = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        assert result.chunk_values == [] and result.n_tiles == 0
        full = result.assemble(grid)
        assert full.shape == grid.grid_shape + (1,)
        assert np.isnan(full).all()


@given(seed=st.integers(0, 2**31), strategy=st.sampled_from(STRATEGIES),
       n_procs=st.integers(1, 5))
@settings(max_examples=15, deadline=None)
def test_property_parallel_equals_serial(seed, strategy, n_procs):
    """Random workloads, random machine widths: parallel == serial."""
    rng = np.random.default_rng(seed)
    spec = SumAggregation(1)
    _, _, chunks, mapping, grid = make_functional_setup(
        rng, n_items=150, items_per_chunk=int(rng.integers(5, 30)),
        grid_cells=(8, 8), chunk_cells=(int(rng.integers(2, 5)), int(rng.integers(2, 5))),
    )
    memory = int(rng.integers(1 << 11, 1 << 16))
    prob = build_problem(chunks, mapping, grid, spec, n_procs=n_procs, memory=memory)
    plan = plan_query(prob, strategy)
    validate_plan(plan)
    result = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
    serial = execute_serial(chunks, mapping, grid, spec)
    for o, vals in zip(result.output_ids, result.chunk_values):
        np.testing.assert_allclose(vals, serial[int(o)])
