"""Tests for chunk metadata and payloads."""

import numpy as np
import pytest

from repro.dataset.chunk import Chunk, ChunkMeta, UNPLACED
from repro.util.geometry import Rect


class TestChunkMeta:
    def test_basic(self):
        m = ChunkMeta(0, Rect((0, 0), (1, 1)), nbytes=1000, n_items=5)
        assert not m.placed
        assert (m.node, m.disk) == UNPLACED

    def test_with_placement(self):
        m = ChunkMeta(0, Rect((0, 0), (1, 1)), 1000)
        p = m.with_placement(2, 0)
        assert p.placed and (p.node, p.disk) == (2, 0)
        assert not m.placed  # original untouched

    def test_bad_placement(self):
        m = ChunkMeta(0, Rect((0, 0), (1, 1)), 1000)
        with pytest.raises(ValueError):
            m.with_placement(-1, 0)

    @pytest.mark.parametrize("kwargs", [
        {"chunk_id": -1, "nbytes": 1},
        {"chunk_id": 0, "nbytes": -1},
        {"chunk_id": 0, "nbytes": 1, "n_items": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChunkMeta(mbr=Rect((0,), (1,)), **kwargs)


class TestChunk:
    def test_from_items(self, rng):
        coords = rng.uniform(0, 10, size=(8, 2))
        values = rng.normal(size=(8, 3))
        c = Chunk.from_items(3, coords, values)
        assert c.chunk_id == 3
        assert c.n_items == 8
        assert c.meta.mbr == Rect.from_points(coords)
        assert c.meta.nbytes == coords.nbytes + values.nbytes

    def test_items_outside_mbr_rejected(self):
        meta = ChunkMeta(0, Rect((0, 0), (1, 1)), 100, n_items=1)
        with pytest.raises(ValueError, match="escape"):
            Chunk(meta, np.array([[2.0, 0.5]]), np.array([1.0]))

    def test_count_mismatch_rejected(self):
        meta = ChunkMeta(0, Rect((0, 0), (1, 1)), 100, n_items=2)
        with pytest.raises(ValueError):
            Chunk(meta, np.array([[0.5, 0.5]]), np.array([1.0]))

    def test_values_coords_mismatch(self):
        with pytest.raises(ValueError):
            Chunk.from_items(0, np.array([[0.0, 0.0], [1.0, 1.0]]), np.array([1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Chunk.from_items(0, np.empty((0, 2)), np.empty(0))

    def test_dimensionality_check(self):
        meta = ChunkMeta(0, Rect((0, 0, 0), (1, 1, 1)), 100, n_items=1)
        with pytest.raises(ValueError):
            Chunk(meta, np.array([[0.5, 0.5]]), np.array([1.0]))
