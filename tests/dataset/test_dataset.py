"""Tests for Dataset and DatasetCatalog."""

import numpy as np
import pytest

from repro.dataset.chunk import Chunk
from repro.dataset.dataset import Dataset, DatasetCatalog
from repro.dataset.partition import hilbert_partition
from repro.space.attribute_space import AttributeSpace
from repro.util.geometry import Rect


def build_dataset(rng, name="d"):
    space = AttributeSpace.regular("sp", ("x", "y"), (0, 0), (10, 10))
    coords = rng.uniform(0, 10, size=(60, 2))
    chunks = hilbert_partition(coords, np.zeros(60), items_per_chunk=10)
    return Dataset.from_chunks(name, space, chunks)


class TestDataset:
    def test_from_chunks(self, rng):
        ds = build_dataset(rng)
        assert ds.n_chunks == 6
        assert ds.has_payloads
        assert ds.payload(2).chunk_id == 2

    def test_metadata_only_payload_access(self, rng):
        ds = build_dataset(rng)
        meta_only = Dataset(ds.name, ds.space, ds.chunks, payloads=None)
        with pytest.raises(RuntimeError, match="metadata-only"):
            meta_only.payload(0)

    def test_intersecting_validates_query(self, rng):
        ds = build_dataset(rng)
        with pytest.raises(ValueError):
            ds.intersecting(Rect((20, 20), (30, 30)))
        hits = ds.intersecting(Rect((0, 0), (10, 10)))
        assert len(hits) == 6

    def test_space_mismatch(self, rng):
        ds = build_dataset(rng)
        bad_space = AttributeSpace.regular("sp3", ("x", "y", "z"), (0, 0, 0), (1, 1, 1))
        with pytest.raises(ValueError):
            Dataset("x", bad_space, ds.chunks)

    def test_payload_order_enforced(self, rng):
        ds = build_dataset(rng)
        with pytest.raises(ValueError):
            Dataset(ds.name, ds.space, ds.chunks, payloads=list(reversed(ds.payloads)))

    def test_with_placement(self, rng):
        ds = build_dataset(rng)
        node = np.zeros(6, dtype=np.int32)
        disk = np.zeros(6, dtype=np.int32)
        placed = ds.with_placement(node, disk)
        assert placed.chunks.placed

    def test_empty_name(self, rng):
        ds = build_dataset(rng)
        with pytest.raises(ValueError):
            Dataset("", ds.space, ds.chunks)


class TestCatalog:
    def test_add_get_remove(self, rng):
        cat = DatasetCatalog()
        ds = build_dataset(rng)
        cat.add(ds)
        assert cat.get("d") is ds
        assert "d" in cat and len(cat) == 1
        cat.remove("d")
        assert "d" not in cat

    def test_duplicate_add(self, rng):
        cat = DatasetCatalog()
        ds = build_dataset(rng)
        cat.add(ds)
        with pytest.raises(ValueError):
            cat.add(ds)
        cat.add(ds, replace=True)  # explicit replace allowed

    def test_missing(self):
        cat = DatasetCatalog()
        with pytest.raises(KeyError):
            cat.get("nope")
        with pytest.raises(KeyError):
            cat.remove("nope")
