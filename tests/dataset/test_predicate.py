"""Tests for value predicates and per-chunk value synopses."""

import numpy as np
import pytest

from repro.dataset.chunk import Chunk, ChunkMeta
from repro.dataset.predicate import ValuePredicate
from repro.dataset.synopsis import ValueSynopsis
from repro.util.geometry import Rect


def make_chunk(cid, values, coords=None):
    values = np.asarray(values, dtype=float)
    if values.ndim == 1:
        values = values[:, None]
    n = len(values)
    if coords is None:
        coords = np.tile([float(cid), 0.0], (n, 1))
    meta = ChunkMeta(
        chunk_id=cid,
        mbr=Rect(tuple(coords.min(axis=0)), tuple(coords.max(axis=0))),
        nbytes=int(values.nbytes + coords.nbytes),
        n_items=n,
    )
    return Chunk(meta, coords, values)


class TestValuePredicate:
    def test_coerce_dict(self):
        p = ValuePredicate.coerce({0: (1.0, 5.0), 2: (None, 3.0)})
        assert p.bounds == ((0, 1.0, 5.0), (2, -np.inf, 3.0))

    def test_coerce_none_and_passthrough(self):
        assert ValuePredicate.coerce(None) is None
        p = ValuePredicate.coerce({0: (0, 1)})
        assert ValuePredicate.coerce(p) is p

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ValuePredicate.coerce({0: (5.0, 1.0)})  # empty interval
        with pytest.raises(ValueError):
            ValuePredicate.coerce({-1: (0.0, 1.0)})  # negative component
        with pytest.raises(ValueError):
            ValuePredicate.coerce({0: (np.nan, 1.0)})
        with pytest.raises(ValueError):
            ValuePredicate.coerce({})

    def test_mask_closed_interval(self):
        p = ValuePredicate.coerce({0: (2.0, 4.0)})
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert p.mask(vals).tolist() == [False, True, True, True, False]

    def test_mask_conjunction(self):
        p = ValuePredicate.coerce({0: (0.0, 10.0), 1: (5.0, None)})
        vals = np.array([[1.0, 9.0], [1.0, 1.0], [20.0, 9.0]])
        assert p.mask(vals).tolist() == [True, False, False]

    def test_mask_nan_never_qualifies(self):
        p = ValuePredicate.coerce({0: (None, None)})
        vals = np.array([1.0, np.nan, -1e30])
        assert p.mask(vals).tolist() == [True, False, True]

    def test_mask_component_beyond_width(self):
        # Constraining a missing component is a loud user error.
        p = ValuePredicate.coerce({3: (0.0, 1.0)})
        with pytest.raises(ValueError):
            p.mask(np.array([[1.0], [2.0]]))

    def test_payload_round_trip(self):
        p = ValuePredicate.coerce({1: (None, 4.5), 0: (2.0, None)})
        q = ValuePredicate.from_payload(p.to_payload())
        assert q == p
        # JSON-safe: no infinities in the payload.
        import json

        json.dumps(p.to_payload())

    def test_prunable_chunks(self):
        chunks = [
            make_chunk(0, [1.0, 2.0, 3.0]),     # overlaps [2.5, 10]
            make_chunk(1, [10.0, 20.0]),        # overlaps
            make_chunk(2, [-5.0, -1.0]),        # disjoint below
            make_chunk(3, [50.0, 60.0]),        # disjoint above
            make_chunk(4, [np.nan, np.nan]),    # all-null
        ]
        syn = ValueSynopsis.from_chunks(chunks)
        p = ValuePredicate.coerce({0: (2.5, 30.0)})
        assert p.prunable_chunks(syn).tolist() == [False, False, True, True, True]

    def test_prunable_ignores_unconstrained_components(self):
        chunks = [make_chunk(0, np.array([[1.0, 100.0], [2.0, 200.0]]))]
        syn = ValueSynopsis.from_chunks(chunks)
        assert not ValuePredicate.coerce({0: (0.0, 5.0)}).prunable_chunks(syn)[0]
        assert ValuePredicate.coerce({1: (0.0, 5.0)}).prunable_chunks(syn)[0]

    def test_prunable_component_beyond_synopsis_width(self):
        # Unknown component: the synopsis can prove nothing -> keep.
        chunks = [make_chunk(0, [1.0, 2.0])]
        syn = ValueSynopsis.from_chunks(chunks)
        p = ValuePredicate.coerce({5: (100.0, 200.0)})
        assert p.prunable_chunks(syn).tolist() == [False]


class TestValueSynopsis:
    def test_from_chunks_extrema(self):
        chunks = [make_chunk(0, [3.0, 1.0, 2.0]), make_chunk(1, [7.0])]
        syn = ValueSynopsis.from_chunks(chunks)
        assert len(syn) == 2
        assert syn.vmin[:, 0].tolist() == [1.0, 7.0]
        assert syn.vmax[:, 0].tolist() == [3.0, 7.0]
        assert syn.counts.tolist() == [3, 1]
        assert syn.nulls[:, 0].tolist() == [0, 0]

    def test_nan_handling(self):
        syn = ValueSynopsis.from_chunks(
            [make_chunk(0, [np.nan, 2.0, np.nan]), make_chunk(1, [np.nan])]
        )
        assert syn.nulls[:, 0].tolist() == [2, 1]
        assert syn.vmin[0, 0] == 2.0 and syn.vmax[0, 0] == 2.0
        assert np.isnan(syn.vmin[1, 0]) and np.isnan(syn.vmax[1, 0])

    def test_multi_component(self):
        vals = np.array([[1.0, 10.0], [2.0, 20.0]])
        syn = ValueSynopsis.from_chunks([make_chunk(0, vals)])
        assert syn.n_components == 2
        assert syn.vmin[0].tolist() == [1.0, 10.0]
        assert syn.vmax[0].tolist() == [2.0, 20.0]

    def test_subset_and_equality(self):
        chunks = [make_chunk(i, [float(i)]) for i in range(5)]
        syn = ValueSynopsis.from_chunks(chunks)
        sub = syn.subset(np.array([1, 3]))
        assert len(sub) == 2
        assert sub.vmin[:, 0].tolist() == [1.0, 3.0]
        assert sub == ValueSynopsis.from_chunks([chunks[1], chunks[3]])
        assert sub != syn

    def test_equality_with_nans(self):
        a = ValueSynopsis.from_chunks([make_chunk(0, [np.nan])])
        b = ValueSynopsis.from_chunks([make_chunk(0, [np.nan])])
        assert a == b

    def test_chunkset_threading(self, rng):
        """load_dataset attaches a synopsis and placement keeps it."""
        from repro.dataset.chunkset import ChunkSet

        chunks = [make_chunk(i, rng.uniform(0, 9, size=4)) for i in range(6)]
        cs = ChunkSet.from_metas([c.meta for c in chunks])
        assert cs.synopsis is None
        syn = ValueSynopsis.from_chunks(chunks)
        cs = cs.with_synopsis(syn)
        assert cs.synopsis == syn
        placed = cs.with_placement(
            np.zeros(6, dtype=np.int32), np.zeros(6, dtype=np.int32)
        )
        assert placed.synopsis == syn
        assert placed.subset(np.array([2, 4])).synopsis == syn.subset(
            np.array([2, 4])
        )

    def test_loader_builds_synopsis(self, rng):
        from repro.dataset.partition import hilbert_partition
        from repro.dataset.loader import load_dataset
        from repro.space.attribute_space import AttributeSpace
        from repro.store.chunk_store import MemoryChunkStore

        space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (10, 10))
        coords = rng.uniform(0, 10, size=(100, 2))
        values = rng.uniform(0, 50, size=100)
        chunks = hilbert_partition(coords, values, 10)
        loaded = load_dataset(
            MemoryChunkStore(), "d", space, chunks, n_nodes=2, disks_per_node=1
        )
        syn = loaded.dataset.chunks.synopsis
        assert syn is not None and len(syn) == len(chunks)
        assert syn == ValueSynopsis.from_chunks(chunks)
