"""Tests for dataset partitioners."""

import numpy as np
import pytest

from repro.dataset.partition import grid_partition, hilbert_partition, regular_grid_chunkset
from repro.util.geometry import Rect


class TestGridPartition:
    def test_covers_all_items(self, rng):
        coords = rng.uniform(0, 10, size=(200, 2))
        values = rng.normal(size=200)
        chunks = grid_partition(coords, values, Rect((0, 0), (10, 10)), (4, 4))
        assert sum(c.n_items for c in chunks) == 200
        ids = [c.chunk_id for c in chunks]
        assert ids == list(range(len(chunks)))

    def test_spatial_separation(self, rng):
        coords = np.array([[1.0, 1.0], [9.0, 9.0], [1.2, 1.1]])
        values = np.arange(3.0)
        chunks = grid_partition(coords, values, Rect((0, 0), (10, 10)), (2, 2))
        assert len(chunks) == 2
        assert {c.n_items for c in chunks} == {1, 2}

    def test_empty_cells_skipped(self, rng):
        coords = rng.uniform(0, 1, size=(50, 2))  # all in one corner cell
        chunks = grid_partition(coords, np.zeros(50), Rect((0, 0), (10, 10)), (10, 10))
        assert len(chunks) == 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            grid_partition(np.empty((0, 2)), np.empty(0), Rect((0, 0), (1, 1)), (2, 2))
        coords = rng.uniform(0, 1, size=(5, 2))
        with pytest.raises(ValueError):
            grid_partition(coords, np.zeros(5), Rect((0, 0), (1, 1)), (2,))
        with pytest.raises(ValueError):
            grid_partition(coords, np.zeros(4), Rect((0, 0), (1, 1)), (2, 2))


class TestHilbertPartition:
    def test_sizes(self, rng):
        coords = rng.uniform(0, 10, size=(105, 2))
        chunks = hilbert_partition(coords, np.zeros(105), items_per_chunk=20)
        sizes = [c.n_items for c in chunks]
        assert sizes == [20, 20, 20, 20, 20, 5]

    def test_spatial_locality(self, rng):
        coords = rng.uniform(0, 10, size=(400, 2))
        chunks = hilbert_partition(coords, np.zeros(400), items_per_chunk=20)
        # Hilbert grouping should give much smaller chunk MBRs than a
        # random grouping of the same sizes.
        hilbert_vol = np.mean([c.meta.mbr.volume for c in chunks])
        perm = rng.permutation(400)
        random_vols = []
        for s in range(0, 400, 20):
            idx = perm[s : s + 20]
            r = Rect.from_points(coords[idx])
            random_vols.append(r.volume)
        assert hilbert_vol < 0.3 * np.mean(random_vols)

    def test_bad_items_per_chunk(self, rng):
        with pytest.raises(ValueError):
            hilbert_partition(rng.uniform(size=(5, 2)), np.zeros(5), 0)


class TestRegularGridChunkset:
    def test_geometry(self):
        cs = regular_grid_chunkset(Rect((0, 0), (4, 2)), (4, 2), 100)
        assert len(cs) == 8
        assert cs.total_bytes == 800
        # row-major: chunk 0 = cell (0, 0), chunk 1 = cell (0, 1)
        assert cs.mbr(0) == Rect((0, 0), (1, 1))
        assert cs.mbr(1) == Rect((0, 1), (1, 2))
        assert cs.mbr(2) == Rect((1, 0), (2, 1))

    def test_covers_bounds_exactly(self):
        cs = regular_grid_chunkset(Rect((-1, -1), (1, 1)), (3, 3), 10)
        assert cs.bounds == Rect((-1, -1), (1, 1))

    def test_validation(self):
        with pytest.raises(ValueError):
            regular_grid_chunkset(Rect((0, 0), (1, 1)), (0, 2), 10)
        with pytest.raises(ValueError):
            regular_grid_chunkset(Rect((0, 0), (1, 1)), (2, 2), -5)
