"""Tests for the bipartite chunk graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.space.attribute_space import AttributeSpace
from repro.space.mapping import IdentityMapping


class TestConstruction:
    def test_from_lists(self):
        g = ChunkGraph.from_lists(3, 2, [[0], [0, 1], []])
        assert g.n_edges == 3
        assert g.outputs_of(1).tolist() == [0, 1]
        assert g.inputs_of(0).tolist() == [0, 1]
        assert g.inputs_of(1).tolist() == [1]
        assert g.outputs_of(2).tolist() == []

    def test_duplicates_merged(self):
        g = ChunkGraph(2, 2, np.array([0, 0, 1]), np.array([1, 1, 0]))
        assert g.n_edges == 2
        assert g.outputs_of(0).tolist() == [1]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ChunkGraph(2, 2, np.array([2]), np.array([0]))
        with pytest.raises(ValueError):
            ChunkGraph(2, 2, np.array([0]), np.array([-1]))

    def test_empty(self):
        g = ChunkGraph(3, 3, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert g.n_edges == 0
        assert g.avg_fan_in == 0.0
        g.validate()

    def test_from_lists_wrong_length(self):
        with pytest.raises(ValueError):
            ChunkGraph.from_lists(2, 2, [[0]])


class TestDegrees:
    def test_fan_stats(self):
        g = ChunkGraph.from_lists(4, 2, [[0], [0, 1], [1], [0, 1]])
        assert g.fan_out.tolist() == [1, 2, 1, 2]
        assert g.fan_in.tolist() == [3, 3]
        assert g.avg_fan_out == 1.5
        assert g.avg_fan_in == 3.0

    def test_edge_arrays(self):
        g = ChunkGraph.from_lists(2, 2, [[1], [0, 1]])
        in_ids, out_ids = g.edge_arrays()
        assert in_ids.tolist() == [0, 1, 1]
        assert out_ids.tolist() == [1, 0, 1]


class TestValidate:
    @given(st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_directions_consistent(self, seed):
        rng = np.random.default_rng(seed)
        n_in, n_out = int(rng.integers(1, 40)), int(rng.integers(1, 15))
        n_edges = int(rng.integers(0, 120))
        g = ChunkGraph(
            n_in,
            n_out,
            rng.integers(0, n_in, size=n_edges),
            rng.integers(0, n_out, size=n_edges),
        )
        g.validate()
        # fan sums agree
        assert g.fan_in.sum() == g.fan_out.sum() == g.n_edges
        # adjacency round-trip
        for i in range(n_in):
            for o in g.outputs_of(i):
                assert i in g.inputs_of(int(o))


class TestFromGeometry:
    def test_matches_brute_force(self, rng):
        space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (100, 100))
        in_los = rng.uniform(0, 90, size=(30, 2))
        inputs = ChunkSet(in_los, in_los + rng.uniform(1, 10, size=(30, 2)),
                          np.full(30, 10, dtype=np.int64))
        out_los = rng.uniform(0, 90, size=(8, 2))
        outputs = ChunkSet(out_los, out_los + 10, np.full(8, 10, dtype=np.int64))
        mapping = IdentityMapping(space)
        g = ChunkGraph.from_geometry(inputs, outputs, mapping)
        g.validate()
        for i in range(30):
            expected = outputs.intersecting(inputs.mbr(i)).tolist()
            assert g.outputs_of(i).tolist() == expected

    def test_footprint_widens(self, rng):
        space = AttributeSpace.regular("s", ("x", "y"), (0, 0), (100, 100))
        inputs = ChunkSet(np.array([[10.0, 10.0]]), np.array([[11.0, 11.0]]),
                          np.array([10], dtype=np.int64))
        outputs = ChunkSet(np.array([[12.0, 10.0]]), np.array([[13.0, 11.0]]),
                           np.array([10], dtype=np.int64))
        no_fp = ChunkGraph.from_geometry(inputs, outputs, IdentityMapping(space))
        with_fp = ChunkGraph.from_geometry(
            inputs, outputs, IdentityMapping(space, footprint=(2.0, 0.0))
        )
        assert no_fp.n_edges == 0
        assert with_fp.n_edges == 1
