"""Tests for packed chunk metadata (ChunkSet)."""

import numpy as np
import pytest

from repro.dataset.chunk import ChunkMeta
from repro.dataset.chunkset import ChunkSet
from repro.util.geometry import Rect


def simple_set(n=10, ndim=2):
    los = np.arange(n, dtype=float)[:, None] * np.ones(ndim)
    his = los + 0.5
    return ChunkSet(los, his, np.full(n, 100, dtype=np.int64))


class TestConstruction:
    def test_defaults(self):
        cs = simple_set()
        assert len(cs) == 10 and cs.ndim == 2
        assert not cs.placed
        assert cs.total_bytes == 1000

    def test_from_metas_roundtrip(self):
        metas = [
            ChunkMeta(i, Rect((i, 0), (i + 1, 1)), 50 + i, n_items=i + 1, node=0, disk=0)
            for i in range(5)
        ]
        cs = ChunkSet.from_metas(metas)
        assert cs.meta(3) == metas[3]
        assert [m.chunk_id for m in cs.iter_metas()] == [0, 1, 2, 3, 4]

    def test_from_metas_requires_dense_ids(self):
        metas = [ChunkMeta(1, Rect((0,), (1,)), 10)]
        with pytest.raises(ValueError, match="dense"):
            ChunkSet.from_metas(metas)

    def test_invalid_mbrs(self):
        with pytest.raises(ValueError):
            ChunkSet(np.array([[1.0]]), np.array([[0.0]]), np.array([10]))

    def test_negative_sizes(self):
        with pytest.raises(ValueError):
            ChunkSet(np.zeros((1, 1)), np.ones((1, 1)), np.array([-1]))

    def test_shape_checks(self):
        with pytest.raises(ValueError):
            ChunkSet(np.zeros((2, 1)), np.ones((2, 1)), np.array([1]))


class TestQueries:
    def test_intersecting(self):
        cs = simple_set()
        hits = cs.intersecting(Rect((2.2, 2.2), (4.1, 4.1)))
        # chunks 3 and 4 overlap; chunk 2 [2,2.5] misses (2.2..) -- no wait
        # chunk i spans [i, i+0.5]; query [2.2,4.1] hits chunk 2 (2..2.5),
        # 3 (3..3.5), 4 (4..4.5)
        assert hits.tolist() == [2, 3, 4]

    def test_bounds(self):
        cs = simple_set(5)
        assert cs.bounds == Rect((0, 0), (4.5, 4.5))

    def test_centers(self):
        cs = simple_set(2)
        np.testing.assert_allclose(cs.centers[1], [1.25, 1.25])

    def test_hilbert_order_is_permutation_and_deterministic(self, rng):
        los = rng.uniform(0, 100, size=(64, 2))
        cs = ChunkSet(los, los + 1, np.full(64, 10, dtype=np.int64))
        order = cs.hilbert_order()
        assert sorted(order.tolist()) == list(range(64))
        assert order.tolist() == cs.hilbert_order().tolist()

    def test_hilbert_order_locality(self, rng):
        los = rng.uniform(0, 100, size=(200, 2))
        cs = ChunkSet(los, los + 0.5, np.full(200, 10, dtype=np.int64))
        order = cs.hilbert_order()
        c = cs.centers
        consecutive = np.linalg.norm(c[order[1:]] - c[order[:-1]], axis=1).mean()
        shuffled = rng.permutation(200)
        baseline = np.linalg.norm(c[shuffled[1:]] - c[shuffled[:-1]], axis=1).mean()
        assert consecutive < 0.5 * baseline


class TestPlacement:
    def test_with_placement(self):
        cs = simple_set()
        node = np.arange(10, dtype=np.int32) % 3
        disk = np.zeros(10, dtype=np.int32)
        placed = cs.with_placement(node, disk)
        assert placed.placed and not cs.placed
        assert placed.chunks_on_node(1).tolist() == [1, 4, 7]

    def test_bytes_per_node(self):
        cs = simple_set()
        placed = cs.with_placement(
            np.arange(10, dtype=np.int32) % 2, np.zeros(10, dtype=np.int32)
        )
        assert placed.bytes_per_node(2).tolist() == [500, 500]


class TestSubset:
    def test_subset_renumbering(self):
        cs = simple_set()
        sub = cs.subset(np.array([2, 5, 7]))
        assert len(sub) == 3
        assert sub.mbr(0) == cs.mbr(2)
        assert sub.mbr(2) == cs.mbr(7)

    def test_empty_subset_rejected(self):
        with pytest.raises(ValueError):
            simple_set().subset(np.array([], dtype=np.int64))
