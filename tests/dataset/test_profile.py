"""Tests for dataset/workload profiling."""

import numpy as np
import pytest

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.dataset.partition import regular_grid_chunkset
from repro.dataset.profile import _gini, profile_chunkset, profile_graph
from repro.util.geometry import Rect


class TestChunkSetProfile:
    def test_regular_grid_is_perfect_tiling(self):
        cs = regular_grid_chunkset(Rect((0, 0), (1, 1)), (4, 4), 100)
        prof = profile_chunkset(cs)
        assert prof.n_chunks == 16
        assert prof.overlap_factor == pytest.approx(1.0)
        assert prof.chunk_bytes_cv == 0.0
        np.testing.assert_allclose(prof.mean_extent, [0.25, 0.25])

    def test_overlapping_population(self, rng):
        los = rng.uniform(0, 0.5, size=(50, 2))
        cs = ChunkSet(los, los + 0.5, np.full(50, 10, dtype=np.int64))
        prof = profile_chunkset(cs)
        assert prof.overlap_factor > 2.0

    def test_placement_balance(self):
        cs = regular_grid_chunkset(Rect((0, 0), (1, 1)), (4, 4), 100)
        placed = cs.with_placement(
            np.arange(16, dtype=np.int32) % 4, np.zeros(16, dtype=np.int32)
        )
        prof = profile_chunkset(placed, n_nodes=4)
        assert prof.placement_balance == pytest.approx(1.0)
        assert "placement balance" in prof.describe()

    def test_unplaced_balance_nan(self):
        cs = regular_grid_chunkset(Rect((0, 0), (1, 1)), (2, 2), 100)
        assert np.isnan(profile_chunkset(cs).placement_balance)

    def test_describe_smoke(self):
        cs = regular_grid_chunkset(Rect((0, 0), (1, 1)), (2, 2), 100)
        assert "4 chunks" in profile_chunkset(cs).describe()


class TestGraphProfile:
    def test_basic(self):
        g = ChunkGraph.from_lists(4, 2, [[0], [0, 1], [], [1]])
        prof = profile_graph(g)
        assert prof.n_edges == 4
        assert prof.fan_out_max == 2
        assert prof.fan_in_mean == 2.0
        assert prof.dangling_inputs == 0.25
        assert "dangling" in prof.describe()

    def test_skew_zero_for_uniform(self):
        g = ChunkGraph.from_lists(6, 3, [[0], [1], [2], [0], [1], [2]])
        assert profile_graph(g).fan_in_skew == pytest.approx(0.0, abs=1e-9)

    def test_skew_positive_for_concentrated(self):
        g = ChunkGraph.from_lists(6, 3, [[0], [0], [0], [0], [0], [1]])
        assert profile_graph(g).fan_in_skew > 0.3

    def test_sat_emulator_skew_exceeds_vm(self):
        from repro.emulator import SATEmulator, VMEmulator

        sat = profile_graph(SATEmulator(base_chunks=2000).scenario(1, seed=1).graph)
        vm = profile_graph(VMEmulator(input_grid=(32, 32)).scenario(1, seed=1).graph)
        assert sat.fan_in_skew > vm.fan_in_skew + 0.1


class TestGini:
    def test_equal_values(self):
        assert _gini(np.ones(10)) == pytest.approx(0.0)

    def test_all_in_one(self):
        x = np.zeros(100)
        x[0] = 1.0
        assert _gini(x) > 0.95

    def test_empty_and_zero(self):
        assert _gini(np.array([])) == 0.0
        assert _gini(np.zeros(5)) == 0.0
