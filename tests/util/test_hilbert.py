"""Tests for the d-dimensional Hilbert curve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.geometry import Rect
from repro.util.hilbert import (
    hilbert_index,
    hilbert_indices,
    hilbert_point,
    hilbert_sort_keys,
)


@pytest.mark.parametrize("bits,ndim", [(1, 2), (4, 2), (3, 3), (2, 4), (2, 5)])
class TestCurveInvariants:
    def test_bijective(self, bits, ndim):
        n = 1 << (bits * ndim)
        points = [hilbert_point(i, bits, ndim) for i in range(n)]
        assert len(set(points)) == n

    def test_inverse(self, bits, ndim):
        n = 1 << (bits * ndim)
        for i in range(0, n, max(1, n // 97)):
            assert hilbert_index(hilbert_point(i, bits, ndim), bits) == i

    def test_adjacency(self, bits, ndim):
        """Consecutive curve positions are neighbouring grid cells --
        the locality property declustering and tiling rely on."""
        n = 1 << (bits * ndim)
        prev = hilbert_point(0, bits, ndim)
        for i in range(1, n):
            cur = hilbert_point(i, bits, ndim)
            assert sum(abs(a - b) for a, b in zip(prev, cur)) == 1
            prev = cur


class TestScalar:
    def test_1d_identity(self):
        assert hilbert_index((5,), 4) == 5
        assert hilbert_point(5, 4, 1) == (5,)

    def test_2d_order1(self):
        # The classic 4-cell U shape.
        pts = [hilbert_point(i, 1, 2) for i in range(4)]
        assert len(set(pts)) == 4
        assert pts[0] == (0, 0)

    def test_coordinate_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_index((16, 0), 4)
        with pytest.raises(ValueError):
            hilbert_index((-1, 0), 4)

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            hilbert_point(1 << 8, 4, 2)
        with pytest.raises(ValueError):
            hilbert_point(-1, 4, 2)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            hilbert_index((0, 0), 0)
        with pytest.raises(ValueError):
            hilbert_point(0, 4, 0)

    def test_large_bits_arbitrary_precision(self):
        # 3 dims x 30 bits = 90-bit indices: beyond int64, must work.
        coords = ((1 << 30) - 1, 12345, 987654)
        idx = hilbert_index(coords, 30)
        assert hilbert_point(idx, 30, 3) == coords


class TestVectorized:
    @given(
        st.integers(1, 8),
        st.integers(2, 4),
        st.integers(0, 2**31),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_scalar(self, bits, ndim, seed):
        rng = np.random.default_rng(seed)
        coords = rng.integers(0, 1 << bits, size=(50, ndim))
        vec = hilbert_indices(coords, bits)
        scalar = [hilbert_index(c, bits) for c in coords]
        assert vec.tolist() == scalar

    def test_empty(self):
        out = hilbert_indices(np.empty((0, 3), dtype=np.int64), 4)
        assert out.shape == (0,)

    def test_overflow_guard(self):
        with pytest.raises(ValueError, match="int64"):
            hilbert_indices(np.zeros((1, 4), dtype=np.int64), 16)

    def test_out_of_range_coords(self):
        with pytest.raises(ValueError):
            hilbert_indices(np.array([[0, 16]]), 4)

    def test_1d(self):
        out = hilbert_indices(np.array([[3], [7]]), 4)
        assert out.tolist() == [3, 7]


class TestSortKeys:
    def test_locality(self, rng):
        """Nearby points get nearby keys more often than random pairs."""
        bbox = Rect((0, 0), (1, 1))
        pts = rng.uniform(0, 1, size=(500, 2))
        keys = hilbert_sort_keys(pts, bbox, bits=10)
        order = np.argsort(keys)
        consecutive = np.linalg.norm(pts[order[1:]] - pts[order[:-1]], axis=1)
        shuffled = rng.permutation(500)
        random_pairs = np.linalg.norm(pts[shuffled[1:]] - pts[shuffled[:-1]], axis=1)
        assert consecutive.mean() < 0.5 * random_pairs.mean()

    def test_boundary_points_in_range(self):
        bbox = Rect((0, 0), (1, 1))
        keys = hilbert_sort_keys(np.array([[0.0, 0.0], [1.0, 1.0]]), bbox, bits=8)
        assert (keys >= 0).all() and (keys < 1 << 16).all()

    def test_degenerate_dimension(self):
        bbox = Rect((0, 5), (1, 5))  # zero extent in y
        keys = hilbert_sort_keys(np.array([[0.2, 5.0], [0.9, 5.0]]), bbox, bits=8)
        assert keys[0] != keys[1]

    def test_single_point_1d_input(self):
        bbox = Rect((0, 0), (1, 1))
        keys = hilbert_sort_keys(np.array([0.5, 0.5]), bbox, bits=8)
        assert keys.shape == (1,)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            hilbert_sort_keys(np.zeros((3, 3)), Rect((0, 0), (1, 1)))
