"""Tests for repro.util.geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.geometry import (
    Rect,
    pack_rects,
    rects_contain_points,
    rects_intersect_mask,
    union_rects,
)


def rect_strategy(ndim=2, lo=-100.0, hi=100.0):
    coord = st.floats(lo, hi, allow_nan=False, allow_infinity=False, width=32)
    return st.lists(st.tuples(coord, coord), min_size=ndim, max_size=ndim).map(
        lambda pairs: Rect(
            tuple(min(a, b) for a, b in pairs), tuple(max(a, b) for a, b in pairs)
        )
    )


class TestRectConstruction:
    def test_basic(self):
        r = Rect((0, 0), (2, 3))
        assert r.ndim == 2
        assert r.volume == 6
        assert r.center == (1.0, 1.5)
        assert r.extents == (2.0, 3.0)

    def test_degenerate_allowed(self):
        r = Rect((1, 1), (1, 5))
        assert r.volume == 0.0

    def test_lo_above_hi_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            Rect((2, 0), (1, 5))

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ValueError):
            Rect((0, 0, 0), (1, 1))

    def test_zero_dims_rejected(self):
        with pytest.raises(ValueError):
            Rect((), ())

    def test_from_points(self):
        pts = np.array([[1, 5], [3, 2], [2, 9]])
        r = Rect.from_points(pts)
        assert r == Rect((1, 2), (3, 9))

    def test_from_points_empty_rejected(self):
        with pytest.raises(ValueError):
            Rect.from_points(np.empty((0, 2)))

    def test_cube(self):
        assert Rect.cube(0, 1, 3) == Rect((0, 0, 0), (1, 1, 1))

    def test_hashable(self):
        assert len({Rect((0, 0), (1, 1)), Rect((0, 0), (1, 1))}) == 1


class TestRectPredicates:
    def test_intersects_overlap(self):
        assert Rect((0, 0), (2, 2)).intersects(Rect((1, 1), (3, 3)))

    def test_intersects_touching_edges(self):
        # closed boxes: shared boundary counts as intersection
        assert Rect((0, 0), (1, 1)).intersects(Rect((1, 0), (2, 1)))

    def test_disjoint(self):
        assert not Rect((0, 0), (1, 1)).intersects(Rect((2, 2), (3, 3)))

    def test_disjoint_in_one_dim_only(self):
        assert not Rect((0, 0), (1, 1)).intersects(Rect((0, 2), (1, 3)))

    def test_contains_point_boundary(self):
        r = Rect((0, 0), (1, 1))
        assert r.contains_point((1.0, 0.0))
        assert not r.contains_point((1.00001, 0.5))

    def test_contains_rect(self):
        assert Rect((0, 0), (4, 4)).contains_rect(Rect((1, 1), (2, 2)))
        assert not Rect((0, 0), (4, 4)).contains_rect(Rect((1, 1), (5, 2)))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            Rect((0, 0), (1, 1)).intersects(Rect((0,), (1,)))


class TestRectCombinators:
    def test_intersection(self):
        out = Rect((0, 0), (2, 2)).intersection(Rect((1, 1), (3, 3)))
        assert out == Rect((1, 1), (2, 2))

    def test_intersection_disjoint_is_none(self):
        assert Rect((0, 0), (1, 1)).intersection(Rect((2, 2), (3, 3))) is None

    def test_union(self):
        assert Rect((0, 0), (1, 1)).union(Rect((2, 2), (3, 3))) == Rect((0, 0), (3, 3))

    def test_expanded(self):
        assert Rect((1, 1), (2, 2)).expanded(1) == Rect((0, 0), (3, 3))

    def test_expanded_negative_collapse_rejected(self):
        with pytest.raises(ValueError):
            Rect((0, 0), (1, 1)).expanded(-0.6)

    def test_enlargement(self):
        base = Rect((0, 0), (1, 1))
        assert base.enlargement(Rect((0, 0), (2, 1))) == pytest.approx(1.0)
        assert base.enlargement(Rect((0.2, 0.2), (0.8, 0.8))) == pytest.approx(0.0)

    @given(rect_strategy(), rect_strategy())
    @settings(max_examples=100)
    def test_intersection_symmetric(self, a, b):
        assert a.intersection(b) == b.intersection(a)
        assert a.intersects(b) == b.intersects(a)

    @given(rect_strategy(), rect_strategy())
    @settings(max_examples=100)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rect_strategy(), rect_strategy())
    @settings(max_examples=100)
    def test_intersection_contained_in_both(self, a, b):
        out = a.intersection(b)
        if out is None:
            assert not a.intersects(b)
        else:
            assert a.contains_rect(out) and b.contains_rect(out)


class TestVectorizedPredicates:
    def test_mask_matches_scalar(self, rng):
        los = rng.uniform(0, 90, size=(200, 3))
        his = los + rng.uniform(0, 10, size=(200, 3))
        q = Rect((20, 20, 20), (50, 50, 50))
        mask = rects_intersect_mask(los, his, q)
        for i in range(200):
            expected = Rect(tuple(los[i]), tuple(his[i])).intersects(q)
            assert mask[i] == expected

    def test_pack_rects_roundtrip(self):
        rects = [Rect((0, 0), (1, 1)), Rect((2, 3), (4, 5))]
        los, his = pack_rects(rects)
        assert los.shape == (2, 2)
        np.testing.assert_allclose(his[1], (4, 5))

    def test_pack_rects_mixed_dims_rejected(self):
        with pytest.raises(ValueError):
            pack_rects([Rect((0, 0), (1, 1)), Rect((0,), (1,))])

    def test_pack_rects_empty_rejected(self):
        with pytest.raises(ValueError):
            pack_rects([])

    def test_contain_points(self):
        los = np.array([[0.0, 0.0], [5.0, 5.0]])
        his = np.array([[2.0, 2.0], [6.0, 6.0]])
        pts = np.array([[1.0, 1.0], [5.5, 5.5], [3.0, 3.0]])
        m = rects_contain_points(los, his, pts)
        assert m.tolist() == [[True, False, False], [False, True, False]]

    def test_union_rects(self):
        u = union_rects([Rect((0, 0), (1, 1)), Rect((-1, 2), (0, 3))])
        assert u == Rect((-1, 0), (1, 3))

    def test_union_rects_empty_rejected(self):
        with pytest.raises(ValueError):
            union_rects([])

    def test_mask_dim_mismatch(self):
        with pytest.raises(ValueError):
            rects_intersect_mask(np.zeros((3, 2)), np.ones((3, 2)), Rect((0,), (1,)))
