"""Tests for units formatting and RNG helpers."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn_rngs
from repro.util.units import GB, KB, MB, fmt_bytes, fmt_seconds


class TestUnits:
    def test_constants(self):
        assert KB == 1024 and MB == KB * 1024 and GB == MB * 1024

    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512 B"),
            (25 * MB, "25.0 MB"),
            (int(1.6 * GB), "1.6 GB"),
            (2048, "2.0 KB"),
            (0, "0 B"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    def test_fmt_seconds(self):
        assert fmt_seconds(123.456) == "123.46 s"
        assert fmt_seconds(0.001234) == "1.23 ms"


class TestRng:
    def test_int_seed_deterministic(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_spawn_independent_and_deterministic(self):
        a = [g.integers(1 << 30) for g in spawn_rngs(42, 4)]
        b = [g.integers(1 << 30) for g in spawn_rngs(42, 4)]
        assert a == b
        assert len(set(a)) == 4
