"""Tests for grid-cell range expansion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.cells import expand_cell_ranges


def brute_force(lo, hi):
    items, cells = [], []
    for k in range(len(lo)):
        ranges = [range(int(a), int(b) + 1) for a, b in zip(lo[k], hi[k])]
        idx = [r.start for r in ranges]
        while True:
            items.append(k)
            cells.append(tuple(idx))
            for d in range(len(ranges) - 1, -1, -1):
                idx[d] += 1
                if idx[d] < ranges[d].stop:
                    break
                idx[d] = ranges[d].start
            else:
                break
    return np.asarray(items), np.asarray(cells)


class TestExpandCellRanges:
    def test_single_cells(self):
        lo = np.array([[1, 2], [3, 4]])
        item, cells = expand_cell_ranges(lo, lo)
        assert item.tolist() == [0, 1]
        assert cells.tolist() == [[1, 2], [3, 4]]

    def test_row_major_order_within_item(self):
        lo = np.array([[0, 0]])
        hi = np.array([[1, 1]])
        _, cells = expand_cell_ranges(lo, hi)
        assert cells.tolist() == [[0, 0], [0, 1], [1, 0], [1, 1]]

    def test_mixed_shapes_grouping(self):
        lo = np.array([[0, 0], [5, 5], [2, 2]])
        hi = np.array([[0, 1], [5, 5], [3, 3]])
        item, cells = expand_cell_ranges(lo, hi)
        # items appear in input order
        assert item.tolist() == [0, 0, 1, 2, 2, 2, 2]

    def test_empty(self):
        item, cells = expand_cell_ranges(np.empty((0, 2)), np.empty((0, 2)))
        assert len(item) == 0 and cells.shape == (0, 2)

    def test_lo_above_hi_rejected(self):
        with pytest.raises(ValueError):
            expand_cell_ranges(np.array([[2, 0]]), np.array([[1, 5]]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            expand_cell_ranges(np.zeros((2, 2)), np.zeros((3, 2)))

    @given(st.integers(0, 2**31), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, seed, ndim):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        lo = rng.integers(0, 10, size=(n, ndim))
        hi = lo + rng.integers(0, 3, size=(n, ndim))
        item, cells = expand_cell_ranges(lo, hi)
        b_item, b_cells = brute_force(lo, hi)
        assert item.tolist() == b_item.tolist()
        assert cells.tolist() == b_cells.tolist()

    def test_counts(self, rng):
        lo = rng.integers(0, 20, size=(50, 2))
        hi = lo + rng.integers(0, 4, size=(50, 2))
        item, _ = expand_cell_ranges(lo, hi)
        expected = np.prod(hi - lo + 1, axis=1)
        assert np.bincount(item, minlength=50).tolist() == expected.tolist()
