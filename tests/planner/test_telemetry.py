"""Tests for measured-run telemetry harvesting and persistence."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.machine.presets import ibm_sp
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_fra, plan_query
from repro.planner.telemetry import (
    CANONICAL_PHASES,
    FEATURES,
    MeasuredRun,
    TelemetryLog,
    plan_features,
)
from repro.sim.query_sim import simulate_query

from helpers import SMALL_COSTS, make_problem


@pytest.fixture
def problem(rng):
    return make_problem(rng, n_procs=4, n_in=80, n_out=12, memory=500_000)


class TestPlanFeatures:
    def test_keys_and_nonnegative(self, problem):
        feats = plan_features(plan_fra(problem))
        assert tuple(feats) == FEATURES
        assert all(v >= 0 for v in feats.values())
        assert feats["read_bytes"] > 0
        assert feats["reduction_pairs"] > 0

    def test_prune_marked_problem_has_smaller_features(self, problem):
        """Marking planned chunks as prunable must subtract their
        reads, bytes and aggregation pairs from the busiest-processor
        features -- execution will skip them."""
        n_in = len(problem.inputs)
        marked = PlanningProblem(
            n_procs=problem.n_procs,
            memory_per_proc=problem.memory_per_proc,
            inputs=problem.inputs,
            outputs=problem.outputs,
            graph=problem.graph,
            acc_nbytes=problem.acc_nbytes,
            input_global_ids=np.arange(n_in, dtype=np.int64),
            pruned_input_ids=np.arange(0, n_in, 2, dtype=np.int64),
            pruned_bytes=int(problem.inputs.nbytes[::2].sum()),
        )
        plain = plan_features(plan_fra(problem))
        pruned = plan_features(plan_fra(marked))
        assert pruned["read_bytes"] < plain["read_bytes"]
        assert pruned["read_count"] < plain["read_count"]
        assert pruned["reduction_pairs"] < plain["reduction_pairs"]


class TestMeasuredRun:
    def test_from_sim(self, problem):
        plan = plan_query(problem, "FRA")
        sim = simulate_query(plan, ibm_sp(problem.n_procs), SMALL_COSTS)
        run = MeasuredRun.from_sim(plan, sim)
        assert run.source == "simulated"
        assert run.strategy == "FRA"
        assert run.n_procs == problem.n_procs
        assert set(run.phase_times) <= set(CANONICAL_PHASES)
        assert run.total_time == pytest.approx(sim.total_time)

    def test_from_result_normalizes_runtime_phase_names(self, problem):
        """The functional backends report initialize/reduce; telemetry
        canonicalizes to the simulator's init/reduction keys."""
        plan = plan_query(problem, "DA")
        result = SimpleNamespace(
            phase_times={
                "initialize": 0.5, "reduce": 2.0, "combine": 0.25,
                "output": 0.125,
            },
            chunks_pruned=3,
            bytes_pruned=4096,
        )
        run = MeasuredRun.from_result(plan, result)
        assert run.source == "measured"
        assert run.phase_times == {
            "init": 0.5, "reduction": 2.0, "combine": 0.25, "output": 0.125,
        }
        assert run.total_time == pytest.approx(2.875)
        assert run.chunks_pruned == 3
        assert run.bytes_pruned == 4096

    def test_dict_roundtrip(self, problem):
        plan = plan_query(problem, "SRA")
        sim = simulate_query(plan, ibm_sp(problem.n_procs), SMALL_COSTS)
        run = MeasuredRun.from_sim(plan, sim)
        assert MeasuredRun.from_dict(run.to_dict()) == run
        # the payload is JSON-safe
        json.dumps(run.to_dict())

    def test_bad_record_raises(self):
        with pytest.raises(ValueError, match="bad MeasuredRun record"):
            MeasuredRun.from_dict({"strategy": "FRA"})


class TestTelemetryLog:
    def _run(self, problem, strategy="FRA"):
        plan = plan_query(problem, strategy)
        sim = simulate_query(plan, ibm_sp(problem.n_procs), SMALL_COSTS)
        return MeasuredRun.from_sim(plan, sim)

    def test_append_load_roundtrip(self, tmp_path, problem):
        log = TelemetryLog(tmp_path / "telemetry.jsonl")
        runs = [self._run(problem, s) for s in ("FRA", "SRA", "DA")]
        log.extend(runs)
        assert len(log) == 3
        assert log.load() == runs

    def test_missing_file_loads_empty(self, tmp_path):
        assert TelemetryLog(tmp_path / "absent.jsonl").load() == []

    def test_blank_lines_skipped(self, tmp_path, problem):
        path = tmp_path / "telemetry.jsonl"
        log = TelemetryLog(path)
        log.append(self._run(problem))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n\n")
        log.append(self._run(problem, "DA"))
        assert len(log.load()) == 2

    def test_malformed_line_raises_with_location(self, tmp_path, problem):
        path = tmp_path / "telemetry.jsonl"
        log = TelemetryLog(path)
        log.append(self._run(problem))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"strategy": "FRA"}\n')
        with pytest.raises(ValueError, match=r":2:"):
            log.load()

    def test_concurrent_appends(self, tmp_path, problem):
        import threading

        log = TelemetryLog(tmp_path / "telemetry.jsonl")
        run = self._run(problem)
        threads = [
            threading.Thread(target=lambda: log.append(run)) for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log.load()) == 8
