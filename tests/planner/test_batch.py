"""Tests for batch (multi-query) planning and scan sharing."""

import numpy as np
import pytest

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.batch import BatchPlan, plan_batch, simulate_batch
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_fra
from repro.sim.query_sim import simulate_query
from repro.util.units import KB, MB

from helpers import sub_problem


MACHINE = MachineConfig(n_procs=2, memory_per_proc=8 * MB)
COSTS = ComputeCosts.from_ms(1, 2, 1, 1)


class TestBatchPlan:
    def test_order_is_permutation(self, rng):
        probs = [sub_problem(rng, range(0, 20)), sub_problem(rng, range(10, 30))]
        batch = plan_batch(probs)
        assert sorted(batch.order) == [0, 1]
        assert len(batch) == 2

    def test_invalid_order_rejected(self, rng):
        p = sub_problem(rng, range(5))
        plan = plan_fra(p)
        with pytest.raises(ValueError):
            BatchPlan([plan], [1])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            plan_batch([])

    def test_chunk_sets_are_global_ids(self, rng):
        probs = [sub_problem(rng, range(5, 15))]
        batch = plan_batch(probs)
        assert batch.query_chunk_sets()[0] == frozenset(range(5, 15))

    def test_reorder_chains_overlapping_queries(self, rng):
        # queries A:[0,20) C:[40,60) B:[15,35) D: disjoint -- the chain
        # should put A next to B (overlap 5 chunks), C isolated.
        a = sub_problem(rng, range(0, 20))
        b = sub_problem(rng, range(15, 35))
        c = sub_problem(rng, range(40, 60))
        batch = plan_batch([a, c, b])  # submitted with C in the middle
        pos = {q: i for i, q in enumerate(batch.order)}
        assert abs(pos[0] - pos[2]) == 1  # A and B adjacent

    def test_no_overlap_keeps_submission_order(self, rng):
        probs = [
            sub_problem(rng, range(0, 10)),
            sub_problem(rng, range(20, 30)),
            sub_problem(rng, range(40, 50)),
        ]
        batch = plan_batch(probs)
        assert batch.order == [0, 1, 2]

    def test_shared_bytes_accounting(self, rng):
        a = sub_problem(rng, range(0, 20))
        b = sub_problem(rng, range(10, 30))
        batch = plan_batch([a, b])
        # 10 shared chunks x 64 KB
        assert batch.consecutive_shared_bytes() == 10 * 64 * KB

    def test_summary_smoke(self, rng):
        batch = plan_batch([sub_problem(rng, range(10))])
        assert "batch of 1" in batch.summary()


class TestSimulateBatch:
    def test_shared_scan_saves_reads_and_time(self, rng):
        a = sub_problem(rng, range(0, 30))
        b = sub_problem(rng, range(5, 35))
        batch = plan_batch([a, b])
        shared = simulate_batch(batch, MACHINE, COSTS, shared_scan=True)
        cold = simulate_batch(batch, MACHINE, COSTS, shared_scan=False)
        assert shared.bytes_saved == 25 * 64 * KB
        assert cold.bytes_saved == 0
        assert shared.total_time < cold.total_time

    def test_per_query_results_in_execution_order(self, rng):
        probs = [sub_problem(rng, range(0, 10)), sub_problem(rng, range(5, 15))]
        batch = plan_batch(probs)
        res = simulate_batch(batch, MACHINE, COSTS)
        assert len(res.per_query) == 2
        assert res.total_time == pytest.approx(
            sum(r.total_time for r in res.per_query)
        )
        assert "batch total" in res.row()

    def test_cached_inputs_zero_disk_time(self, rng):
        prob = sub_problem(rng, range(0, 10))
        plan = plan_fra(prob)
        cold = simulate_query(plan, MACHINE, COSTS)
        warm = simulate_query(
            plan, MACHINE, COSTS, cached_inputs=frozenset(range(10))
        )
        assert warm.read_bytes.sum() == 0
        assert warm.total_time < cold.total_time
        assert warm.disk_busy.sum() < cold.disk_busy.sum()


class TestOrderForSharing:
    """The standalone ordering used by the concurrent query service to
    schedule pre-built, possibly mixed-strategy plans."""

    def _plans(self, rng, ranges, strategy="FRA"):
        from repro.planner.strategies import plan_query

        return [plan_query(sub_problem(rng, r), strategy) for r in ranges]

    def test_returns_permutation(self, rng):
        from repro.planner.batch import order_for_sharing

        plans = self._plans(rng, [range(0, 20), range(10, 30), range(40, 60)])
        order = order_for_sharing(plans)
        assert sorted(order) == [0, 1, 2]

    def test_two_or_fewer_keep_submission_order(self, rng):
        from repro.planner.batch import order_for_sharing

        plans = self._plans(rng, [range(0, 20), range(0, 20)])
        assert order_for_sharing(plans) == [0, 1]
        assert order_for_sharing(plans[:1]) == [0]

    def test_chains_overlap_across_mixed_strategies(self, rng):
        """Overlap is a property of the input chunk sets, not the
        tiling: FRA and SRA plans order the same."""
        from repro.planner.batch import order_for_sharing
        from repro.planner.strategies import plan_query

        a = plan_query(sub_problem(rng, range(0, 20)), "FRA")
        c = plan_query(sub_problem(rng, range(40, 60)), "SRA")
        b = plan_query(sub_problem(rng, range(15, 35)), "SRA")
        order = order_for_sharing([a, c, b])
        pos = {q: i for i, q in enumerate(order)}
        assert abs(pos[0] - pos[2]) == 1  # A and B adjacent

    def test_no_overlap_keeps_submission_order(self, rng):
        from repro.planner.batch import order_for_sharing

        plans = self._plans(
            rng, [range(0, 10), range(20, 30), range(40, 50)]
        )
        assert order_for_sharing(plans) == [0, 1, 2]

    def test_matches_plan_batch_order(self, rng):
        from repro.planner.batch import order_for_sharing

        probs = [sub_problem(rng, range(0, 20)),
                 sub_problem(rng, range(40, 60)),
                 sub_problem(rng, range(15, 35))]
        batch = plan_batch(probs)
        from repro.planner.strategies import plan_query

        plans = [plan_query(p, "FRA") for p in probs]
        assert order_for_sharing(plans) == batch.order


class TestConsecutiveSharedKeys:
    """The pin set handed to the payload cache by the query service."""

    def test_keys_are_the_consecutive_overlaps(self, rng):
        probs = [sub_problem(rng, range(0, 20)),
                 sub_problem(rng, range(15, 35))]
        batch = plan_batch(probs)
        assert batch.consecutive_shared_keys() == frozenset(range(15, 20))

    def test_disjoint_batch_pins_nothing(self, rng):
        probs = [sub_problem(rng, range(0, 10)),
                 sub_problem(rng, range(20, 30))]
        batch = plan_batch(probs)
        assert batch.consecutive_shared_keys() == frozenset()

    def test_only_adjacent_overlap_counts(self, rng):
        """Overlap between non-consecutive queries is not in the pin
        set -- the reuse window is one query deep."""
        a = sub_problem(rng, range(0, 10))
        b = sub_problem(rng, range(20, 30))
        c = sub_problem(rng, range(0, 10))  # same chunks as A
        batch = plan_batch([a, b, c], reorder=False)
        assert batch.order == [0, 1, 2]
        assert batch.consecutive_shared_keys() == frozenset()

    def test_chain_unions_every_adjacent_pair(self, rng):
        probs = [sub_problem(rng, range(0, 20)),
                 sub_problem(rng, range(15, 35)),
                 sub_problem(rng, range(30, 50))]
        batch = BatchPlan(
            [plan_fra(p) for p in probs], [0, 1, 2]
        )
        assert batch.consecutive_shared_keys() == (
            frozenset(range(15, 20)) | frozenset(range(30, 35))
        )
