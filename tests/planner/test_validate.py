"""Tests for the plan validator: corrupted plans must be rejected."""

import numpy as np
import pytest

from repro.planner.plan import QueryPlan
from repro.planner.strategies import plan_da, plan_fra
from repro.planner.validate import PlanValidationError, validate_plan

from helpers import make_problem


@pytest.fixture
def problem(rng):
    return make_problem(rng, n_procs=3, n_in=30, n_out=8, memory=500_000)


def rebuild(plan, **overrides):
    kw = dict(
        strategy=plan.strategy,
        problem=plan.problem,
        n_tiles=plan.n_tiles,
        tile_of_output=plan.tile_of_output.copy(),
        holders_indptr=plan.holders_indptr.copy(),
        holders_ids=plan.holders_ids.copy(),
        edge_proc=plan.edge_proc.copy(),
    )
    kw.update(overrides)
    return QueryPlan(**kw)


class TestValidator:
    def test_accepts_good_plans(self, problem):
        validate_plan(plan_fra(problem))
        validate_plan(plan_da(problem))

    def test_tile_out_of_range(self, problem):
        plan = plan_fra(problem)
        bad_tiles = plan.tile_of_output.copy()
        bad_tiles[0] = plan.n_tiles + 3
        with pytest.raises(PlanValidationError, match="tile ids"):
            validate_plan(rebuild(plan, tile_of_output=bad_tiles))

    def test_owner_not_holder(self, problem):
        plan = plan_da(problem)
        bad = plan.holders_ids.copy()
        owner0 = int(problem.output_owner[0])
        bad[0] = (owner0 + 1) % problem.n_procs
        with pytest.raises(PlanValidationError, match="not a holder"):
            validate_plan(rebuild(plan, holders_ids=bad))

    def test_holder_proc_out_of_range(self, problem):
        plan = plan_fra(problem)
        bad = plan.holders_ids.copy()
        bad[0] = 99
        with pytest.raises(PlanValidationError):
            validate_plan(rebuild(plan, holders_ids=bad))

    def test_duplicate_holder(self, problem):
        plan = plan_fra(problem)
        bad = plan.holders_ids.copy()
        bad[1] = bad[0]
        with pytest.raises(PlanValidationError, match="duplicate"):
            validate_plan(rebuild(plan, holders_ids=bad))

    def test_edge_on_non_holder(self, problem):
        plan = plan_da(problem)
        if not plan.problem.graph.n_edges:
            pytest.skip("no edges in random problem")
        bad = plan.edge_proc.copy()
        _, edge_out = plan.edge_arrays
        owner = int(problem.output_owner[edge_out[0]])
        bad[0] = (owner + 1) % problem.n_procs
        with pytest.raises(PlanValidationError, match="holds no accumulator"):
            validate_plan(rebuild(plan, edge_proc=bad))

    def test_edge_proc_out_of_range(self, problem):
        plan = plan_fra(problem)
        if not plan.problem.graph.n_edges:
            pytest.skip("no edges")
        bad = plan.edge_proc.copy()
        bad[0] = -1
        with pytest.raises(PlanValidationError):
            validate_plan(rebuild(plan, edge_proc=bad))

    def test_memory_overflow_detected(self, rng):
        prob = make_problem(rng, n_procs=2, n_in=20, n_out=6, memory=1 << 40)
        prob.acc_nbytes = np.full(6, 1000, dtype=np.int64)
        plan = plan_fra(prob)
        # shrink the budget after planning: single tile now overflows
        prob.memory_per_proc = np.full(2, 1500, dtype=np.int64)
        with pytest.raises(PlanValidationError, match="overflows"):
            validate_plan(plan)

    def test_single_oversized_chunk_tolerated(self, rng):
        prob = make_problem(rng, n_procs=2, n_in=10, n_out=1, memory=100)
        prob.acc_nbytes = np.array([10_000], dtype=np.int64)
        plan = plan_fra(prob)  # one chunk alone exceeds the budget
        validate_plan(plan)  # allowed: degenerate single-chunk tile
