"""Tests for the hybrid (graph-based) strategy."""

import networkx as nx
import numpy as np
import pytest

from repro.emulator import SATEmulator
from repro.machine.presets import ibm_sp
from repro.planner.hybrid import chunk_multigraph, plan_hybrid
from repro.planner.stats import plan_stats
from repro.planner.strategies import plan_da, plan_fra
from repro.planner.validate import validate_plan
from repro.sim.query_sim import simulate_query

from helpers import SMALL_COSTS, make_problem, small_machine


@pytest.fixture
def problem(rng):
    return make_problem(rng, n_procs=4, n_in=60, n_out=10, memory=400_000)


class TestHybridPlan:
    def test_validates(self, problem):
        validate_plan(plan_hybrid(problem))

    def test_with_machine_costs(self, problem):
        plan = plan_hybrid(problem, small_machine(), SMALL_COSTS)
        validate_plan(plan)
        assert plan.strategy == "HYBRID"

    def test_every_edge_assigned(self, problem):
        plan = plan_hybrid(problem)
        assert plan_stats(plan).reduction_pairs.sum() == problem.graph.n_edges

    def test_between_extremes_in_ghosts(self, problem):
        hybrid = plan_hybrid(problem)
        fra = plan_fra(problem)
        da = plan_da(problem)
        assert da.ghost_count <= hybrid.ghost_count <= fra.ghost_count

    def test_competitive_on_emulated_workload(self):
        """Hybrid should land near (or below) the better extreme."""
        sc = SATEmulator(base_chunks=2000).scenario(2, seed=5)
        m = ibm_sp(8)
        prob = sc.problem(m)
        times = {}
        for name, planner in (
            ("FRA", plan_fra),
            ("DA", plan_da),
            ("HYBRID", lambda p: plan_hybrid(p, m, sc.costs)),
        ):
            plan = planner(prob)
            validate_plan(plan)
            times[name] = simulate_query(plan, m, sc.costs).total_time
        best = min(times["FRA"], times["DA"])
        assert times["HYBRID"] <= 1.25 * best, times


class TestChunkMultigraph:
    def test_structure(self, problem):
        g = chunk_multigraph(problem)
        assert isinstance(g, nx.Graph)
        assert g.number_of_nodes() == problem.n_in + problem.n_out
        assert g.number_of_edges() == problem.graph.n_edges
        assert nx.is_bipartite(g)

    def test_node_attributes(self, problem):
        g = chunk_multigraph(problem)
        n = ("in", 0)
        assert g.nodes[n]["bytes"] == int(problem.inputs.nbytes[0])
        assert g.nodes[n]["proc"] == int(problem.input_owner[0])
