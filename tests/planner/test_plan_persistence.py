"""Tests for query-plan persistence (the planning service's cache)."""

import pickle

import numpy as np
import pytest

from repro.machine.config import ComputeCosts, MachineConfig
from repro.planner.plan import QueryPlan
from repro.planner.strategies import plan_da, plan_fra
from repro.planner.validate import PlanValidationError
from repro.sim.query_sim import simulate_query

from helpers import make_problem

COSTS = ComputeCosts.from_ms(1, 4, 1, 1)


class TestPlanPersistence:
    def test_roundtrip_preserves_structure(self, rng, tmp_path):
        prob = make_problem(rng, n_procs=3, n_in=60, n_out=10, memory=300_000)
        plan = plan_fra(prob)
        path = tmp_path / "q1.plan"
        plan.save(path)
        loaded = QueryPlan.load(path)
        assert loaded.strategy == plan.strategy
        assert loaded.n_tiles == plan.n_tiles
        assert loaded.tile_of_output.tolist() == plan.tile_of_output.tolist()
        assert loaded.holders_ids.tolist() == plan.holders_ids.tolist()
        assert loaded.edge_proc.tolist() == plan.edge_proc.tolist()

    def test_loaded_plan_simulates_identically(self, rng, tmp_path):
        prob = make_problem(rng, n_procs=3)
        plan = plan_da(prob)
        path = tmp_path / "q.plan"
        plan.save(path)
        loaded = QueryPlan.load(path)
        machine = MachineConfig(n_procs=3, memory_per_proc=1 << 20)
        a = simulate_query(plan, machine, COSTS)
        b = simulate_query(loaded, machine, COSTS)
        assert a.total_time == b.total_time
        assert a.sent_bytes.tolist() == b.sent_bytes.tolist()

    def test_derived_traffic_rebuilt_after_load(self, rng, tmp_path):
        prob = make_problem(rng, n_procs=3)
        plan = plan_fra(prob)
        _ = plan.reads, plan.ghost_transfers  # populate caches pre-save
        path = tmp_path / "q.plan"
        plan.save(path)
        loaded = QueryPlan.load(path)
        assert len(loaded.reads) == len(plan.reads)
        assert loaded.total_read_bytes == plan.total_read_bytes

    def test_wrong_payload_rejected(self, tmp_path):
        path = tmp_path / "bad.plan"
        with open(path, "wb") as fh:
            pickle.dump(("SomethingElse", {}), fh)
        with pytest.raises(TypeError):
            QueryPlan.load(path)

    def test_corrupted_plan_fails_validation(self, rng, tmp_path):
        prob = make_problem(rng, n_procs=3)
        plan = plan_fra(prob)
        plan.tile_of_output[0] = 999  # corrupt before saving
        path = tmp_path / "bad.plan"
        plan.save(path)
        with pytest.raises(PlanValidationError):
            QueryPlan.load(path)
