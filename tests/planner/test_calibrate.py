"""Tests for cost-model calibration from measured runs."""

import json

import numpy as np
import pytest

from repro.machine.presets import ibm_sp
from repro.planner.calibrate import (
    CONSTANTS,
    PHASE_TERMS,
    CalibratedCostModel,
    CalibrationError,
    calibrate,
    main,
)
from repro.planner.select import FIXED_STRATEGIES, choose_strategy
from repro.planner.strategies import plan_query
from repro.planner.telemetry import (
    CANONICAL_PHASES,
    FEATURES,
    MeasuredRun,
    TelemetryLog,
)
from repro.sim.query_sim import simulate_query

from helpers import SMALL_COSTS, make_problem

#: Ground-truth machine constants for synthetic-run generation.
TRUE = {
    "init": 2e-3,
    "reduction": 5e-4,
    "combine": 1e-3,
    "output": 3e-3,
    "read_byte": 1e-7,
    "message": 2e-4,
}


def synthetic_runs(rng, n=8, constants=TRUE):
    """Runs whose phase times follow the model equations exactly."""
    runs = []
    for _ in range(n):
        features = {name: float(rng.uniform(10, 1000)) for name in FEATURES}
        features["read_bytes"] = float(rng.uniform(1e5, 1e7))
        features["write_bytes"] = float(rng.uniform(1e4, 1e6))
        phase_times = {
            phase: sum(
                constants[const] * features[feat]
                for const, feat in PHASE_TERMS[phase]
            )
            for phase in CANONICAL_PHASES
        }
        runs.append(
            MeasuredRun(
                strategy="FRA",
                n_procs=4,
                n_tiles=1,
                phase_times=phase_times,
                features=features,
                source="measured",
                total_time=sum(phase_times.values()),
            )
        )
    return runs


def grid_runs(rng, strategies=FIXED_STRATEGIES):
    """Simulated runs over a few heterogeneous problems."""
    runs = []
    for n_in, n_out, memory in ((60, 10, 400_000), (120, 20, 250_000),
                                (90, 16, 1 << 30)):
        problem = make_problem(rng, n_procs=4, n_in=n_in, n_out=n_out,
                               memory=memory)
        for s in strategies:
            plan = plan_query(problem, s)
            sim = simulate_query(plan, ibm_sp(4), SMALL_COSTS)
            runs.append(MeasuredRun.from_sim(plan, sim))
    return runs


class TestCalibrate:
    def test_recovers_known_constants(self, rng):
        model = calibrate(synthetic_runs(rng))
        for name, want in TRUE.items():
            assert model.constants[name] == pytest.approx(want, rel=1e-6), name
        assert model.diagnostics.r2 == pytest.approx(1.0, abs=1e-9)
        assert model.diagnostics.unidentified == ()
        assert model.sources == ("measured",)

    def test_too_few_runs_raises(self, rng):
        with pytest.raises(CalibrationError, match="at least 4"):
            calibrate(synthetic_runs(rng, n=3))

    def test_degenerate_runs_raise(self, rng):
        """Identical runs cannot separate the constants sharing a
        phase equation -- the fit must refuse, not guess."""
        one = synthetic_runs(rng, n=1)[0]
        with pytest.raises(CalibrationError, match="degenerate|homogeneous"):
            calibrate([one] * 6)

    def test_zero_times_raise(self, rng):
        runs = [
            MeasuredRun(
                strategy="FRA", n_procs=1, n_tiles=1,
                phase_times={p: 0.0 for p in CANONICAL_PHASES},
                features={f: 0.0 for f in FEATURES},
            )
            for _ in range(5)
        ]
        with pytest.raises(CalibrationError, match="no usable"):
            calibrate(runs)

    def test_unidentified_constants_reported(self, rng):
        """Runs with no messages at all leave the message constant
        unidentifiable; it must be flagged, not silently zeroed."""
        runs = synthetic_runs(rng)
        quiet = []
        for run in runs:
            features = dict(run.features)
            features["lr_messages"] = 0.0
            features["gc_messages"] = 0.0
            phase_times = {
                phase: sum(
                    TRUE[const] * features[feat]
                    for const, feat in PHASE_TERMS[phase]
                )
                for phase in CANONICAL_PHASES
            }
            quiet.append(
                MeasuredRun(
                    strategy=run.strategy, n_procs=run.n_procs,
                    n_tiles=run.n_tiles, phase_times=phase_times,
                    features=features,
                )
            )
        model = calibrate(quiet)
        assert model.diagnostics.unidentified == ("message",)
        assert model.constants["message"] == 0.0

    def test_fits_simulated_grid(self, rng):
        """End to end over real plans: the fit must explain the
        simulator's phase times well."""
        model = calibrate(grid_runs(rng))
        assert model.diagnostics.r2 > 0.9
        assert model.constants["read_byte"] > 0


class TestCalibratedCostModel:
    def test_estimate_and_selection(self, rng):
        model = calibrate(grid_runs(rng))
        problem = make_problem(rng, n_procs=4, n_in=80, n_out=12,
                               memory=500_000)
        est = model.estimate(plan_query(problem, "FRA"))
        assert est.total > 0
        choice = choose_strategy(problem, model, FIXED_STRATEGIES)
        assert choice.selected in FIXED_STRATEGIES

    def test_missing_constant_rejected(self):
        with pytest.raises(ValueError, match="missing constants"):
            CalibratedCostModel(constants={"init": 1.0})

    def test_negative_constant_rejected(self):
        constants = {name: 1.0 for name in CONSTANTS}
        constants["message"] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            CalibratedCostModel(constants=constants)

    def test_save_load_roundtrip(self, rng, tmp_path):
        model = calibrate(synthetic_runs(rng))
        path = tmp_path / "model.json"
        model.save(path)
        loaded = CalibratedCostModel.load(path)
        assert loaded.constants == model.constants
        assert loaded.diagnostics.r2 == pytest.approx(model.diagnostics.r2)
        assert loaded.sources == model.sources

    def test_read_bandwidth(self):
        constants = {name: 0.0 for name in CONSTANTS}
        constants["read_byte"] = 1e-8
        assert CalibratedCostModel(constants=constants).read_bandwidth == pytest.approx(1e8)
        constants["read_byte"] = 0.0
        assert CalibratedCostModel(constants=constants).read_bandwidth == float("inf")

    def test_summary_mentions_fit(self, rng):
        model = calibrate(synthetic_runs(rng))
        text = model.summary()
        assert "calibrated cost model" in text
        assert "R^2" in text


class TestCLI:
    def test_fit_from_log(self, rng, tmp_path, capsys):
        log_path = tmp_path / "telemetry.jsonl"
        TelemetryLog(log_path).extend(synthetic_runs(rng))
        out_path = tmp_path / "model.json"
        assert main(["--log", str(log_path), "--out", str(out_path)]) == 0
        model = CalibratedCostModel.load(out_path)
        assert model.constants["reduction"] == pytest.approx(
            TRUE["reduction"], rel=1e-6
        )
        assert "wrote" in capsys.readouterr().out

    def test_source_filter(self, rng, tmp_path):
        log_path = tmp_path / "telemetry.jsonl"
        TelemetryLog(log_path).extend(synthetic_runs(rng))
        out_path = tmp_path / "model.json"
        # every synthetic run is source="measured"; filtering to
        # simulated leaves nothing to fit
        assert main([
            "--log", str(log_path), "--out", str(out_path),
            "--source", "simulated",
        ]) == 1
        assert not out_path.exists()

    def test_failure_is_loud(self, tmp_path, capsys):
        log_path = tmp_path / "empty.jsonl"
        log_path.write_text("")
        out_path = tmp_path / "model.json"
        assert main(["--log", str(log_path), "--out", str(out_path)]) == 1
        assert "calibration failed" in capsys.readouterr().err
