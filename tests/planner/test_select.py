"""Tests for the strategy-selection choke point."""

import pytest

from repro.machine.config import ComputeCosts
from repro.planner.costmodel import CostModel
from repro.planner.select import (
    ALL_STRATEGIES,
    AUTO,
    DA,
    FIXED_STRATEGIES,
    FRA,
    HYBRID,
    SRA,
    StrategyChoice,
    choose_strategy,
    is_auto,
)
from repro.planner.strategies import plan_query
from repro.planner.validate import validate_plan

from helpers import SMALL_COSTS, make_problem, small_machine


@pytest.fixture
def problem(rng):
    return make_problem(rng, n_procs=4, n_in=80, n_out=12, memory=500_000)


@pytest.fixture
def model():
    return CostModel(small_machine(), SMALL_COSTS)


class TestNames:
    def test_canonical_sets(self):
        assert FIXED_STRATEGIES == (FRA, SRA, DA)
        assert ALL_STRATEGIES == (FRA, SRA, DA, HYBRID)
        assert AUTO not in ALL_STRATEGIES

    def test_is_auto_any_case(self):
        assert is_auto("AUTO")
        assert is_auto("auto")
        assert is_auto("Auto")
        assert not is_auto(FRA)
        assert not is_auto("")
        assert not is_auto(None)


class TestChooseStrategy:
    def test_returns_argmin_of_estimates(self, problem, model):
        choice = choose_strategy(problem, model)
        assert set(choice.estimates) == set(ALL_STRATEGIES)
        best_total = min(e.total for e in choice.estimates.values())
        assert choice.estimates[choice.selected].total == best_total
        assert choice.plan.strategy == choice.selected

    def test_plan_is_valid(self, problem, model):
        choice = choose_strategy(problem, model)
        validate_plan(choice.plan)

    def test_matches_explicit_planning(self, problem, model):
        """The selected plan must be exactly what planning the selected
        strategy explicitly would have produced (auto adds a choice,
        never a different plan)."""
        choice = choose_strategy(problem, model, FIXED_STRATEGIES)
        explicit = plan_query(problem, choice.selected)
        assert choice.plan.tile_of_output.tolist() == explicit.tile_of_output.tolist()
        assert choice.plan.edge_proc.tolist() == explicit.edge_proc.tolist()

    def test_ranking_sorted_cheapest_first(self, problem, model):
        choice = choose_strategy(problem, model)
        totals = [est.total for _, est in choice.ranking]
        assert totals == sorted(totals)
        assert choice.ranking[0][0] == choice.selected
        ranked = choice.ranking_dict()
        assert list(ranked.values()) == sorted(ranked.values())

    def test_candidate_subset(self, problem, model):
        choice = choose_strategy(problem, model, (FRA, DA))
        assert set(choice.estimates) == {FRA, DA}
        assert choice.selected in (FRA, DA)

    def test_lowercase_candidates_normalized(self, problem, model):
        choice = choose_strategy(problem, model, ("fra", "da"))
        assert set(choice.estimates) == {FRA, DA}

    def test_empty_candidates_rejected(self, problem, model):
        with pytest.raises(ValueError, match="at least one"):
            choose_strategy(problem, model, ())

    def test_duplicate_candidates_rejected(self, problem, model):
        with pytest.raises(ValueError, match="duplicate"):
            choose_strategy(problem, model, (FRA, "fra"))

    def test_auto_cannot_be_candidate(self, problem, model):
        with pytest.raises(ValueError, match="AUTO"):
            choose_strategy(problem, model, (FRA, AUTO))

    def test_duck_typed_model(self, problem):
        """Anything with estimate(plan) -> CostEstimate works."""

        class BiasedModel:
            def estimate(self, plan):
                est = CostModel(small_machine(), SMALL_COSTS).estimate(plan)
                if plan.strategy != SRA:  # make SRA always win
                    est = type(est)(
                        strategy=est.strategy,
                        init=est.init + 1e6,
                        reduction=est.reduction,
                        combine=est.combine,
                        output=est.output,
                    )
                return est

        choice = choose_strategy(problem, BiasedModel(), FIXED_STRATEGIES)
        assert choice.selected == SRA

    def test_table_marks_selection(self, problem, model):
        choice = choose_strategy(problem, model)
        table = choice.table()
        assert "->" in table
        assert isinstance(choice, StrategyChoice)


class TestCostmodelSelectStrategy:
    """costmodel.select_strategy now routes through choose_strategy."""

    def test_same_winner_as_choke_point(self, problem, model):
        from repro.planner.costmodel import select_strategy

        best, estimates = select_strategy(problem, small_machine(), SMALL_COSTS)
        choice = choose_strategy(problem, model, FIXED_STRATEGIES)
        assert best.strategy == choice.selected
        assert set(estimates) == set(FIXED_STRATEGIES)
