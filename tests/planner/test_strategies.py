"""Tests for the FRA/SRA/DA tiling and workload-partitioning algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planner.plan import QueryPlan
from repro.planner.strategies import STRATEGIES, plan_da, plan_fra, plan_query, plan_sra
from repro.planner.validate import validate_plan

from helpers import make_problem


@pytest.fixture
def problem(rng):
    return make_problem(rng, n_procs=4, n_in=80, n_out=16, memory=200 * 1024)


ALL = ["FRA", "SRA", "DA", "HYBRID"]


@pytest.mark.parametrize("name", ALL)
class TestCommonInvariants:
    def test_validates(self, problem, name):
        validate_plan(plan_query(problem, name))

    def test_every_output_in_one_tile(self, problem, name):
        plan = plan_query(problem, name)
        assert plan.tile_of_output.shape == (problem.n_out,)
        assert (plan.tile_of_output >= 0).all()
        assert (plan.tile_of_output < plan.n_tiles).all()

    def test_owner_always_holds(self, problem, name):
        plan = plan_query(problem, name)
        for o in range(problem.n_out):
            assert int(problem.output_owner[o]) in plan.holders_of(o)

    def test_memory_respected_per_tile_per_proc(self, problem, name):
        plan = plan_query(problem, name)
        for t in range(plan.n_tiles):
            usage = np.zeros(problem.n_procs, dtype=np.int64)
            chunks_on = np.zeros(problem.n_procs, dtype=np.int64)
            for o in np.flatnonzero(plan.tile_of_output == t):
                for p in plan.holders_of(o):
                    usage[p] += problem.acc_nbytes[o]
                    chunks_on[p] += 1
            over = usage > problem.memory_per_proc
            assert not (over & (chunks_on > 1)).any()


class TestFRA:
    def test_holders_are_all_procs(self, problem):
        plan = plan_fra(problem)
        for o in range(problem.n_out):
            assert plan.holders_of(o).tolist() == list(range(problem.n_procs))

    def test_edges_at_input_owner(self, problem):
        plan = plan_fra(problem)
        edge_in, _ = plan.edge_arrays
        assert plan.edge_proc.tolist() == problem.input_owner[edge_in].tolist()

    def test_tiles_follow_hilbert_order(self, problem):
        plan = plan_fra(problem)
        order = problem.output_hilbert_order()
        tiles = plan.tile_of_output[order]
        assert (np.diff(tiles) >= 0).all()

    def test_tile_count_formula(self, problem):
        """Greedy packing against the min-memory budget."""
        plan = plan_fra(problem)
        budget = int(problem.memory_per_proc.min())
        order = problem.output_hilbert_order()
        tile, used = 0, 0
        for o in order:
            s = int(problem.acc_nbytes[o])
            if used + s > budget and used > 0:
                tile, used = tile + 1, 0
            used += s
        assert plan.n_tiles == tile + 1

    def test_huge_memory_single_tile(self, rng):
        prob = make_problem(rng, memory=1 << 40)
        assert plan_fra(prob).n_tiles == 1


class TestSRA:
    def test_holders_subset_of_fra_superset_of_so(self, problem):
        plan = plan_sra(problem)
        for o in range(problem.n_out):
            holders = set(plan.holders_of(o).tolist())
            so = set(problem.procs_with_input_for(o).tolist())
            owner = int(problem.output_owner[o])
            assert holders == so | {owner}

    def test_ghost_count_at_most_fra(self, problem):
        assert plan_sra(problem).ghost_count <= plan_fra(problem).ghost_count

    def test_equals_fra_when_fan_in_spans_all_procs(self, rng):
        # every output receives input from every processor
        prob = make_problem(rng, n_procs=2, n_in=200, n_out=4, fan_out=3)
        sra, fra = plan_sra(prob), plan_fra(prob)
        assert sra.ghost_count == fra.ghost_count

    def test_edges_at_input_owner(self, problem):
        plan = plan_sra(problem)
        edge_in, _ = plan.edge_arrays
        assert plan.edge_proc.tolist() == problem.input_owner[edge_in].tolist()


class TestDA:
    def test_owner_is_sole_holder(self, problem):
        plan = plan_da(problem)
        for o in range(problem.n_out):
            assert plan.holders_of(o).tolist() == [int(problem.output_owner[o])]

    def test_edges_at_output_owner(self, problem):
        plan = plan_da(problem)
        _, edge_out = plan.edge_arrays
        assert plan.edge_proc.tolist() == problem.output_owner[edge_out].tolist()

    def test_per_proc_tiles_monotone_in_hilbert_order(self, problem):
        plan = plan_da(problem)
        order = problem.output_hilbert_order()
        for p in range(problem.n_procs):
            mine = [o for o in order if problem.output_owner[o] == p]
            tiles = plan.tile_of_output[mine]
            assert (np.diff(tiles) >= 0).all()

    def test_fewer_or_equal_tiles_than_fra(self, problem):
        assert plan_da(problem).n_tiles <= plan_fra(problem).n_tiles

    def test_aggregate_memory_advantage(self, rng):
        """With per-chunk acc size ~ memory/2, FRA needs ~n_out/2
        tiles while DA spreads chunks over all processors' memories."""
        prob = make_problem(rng, n_procs=4, n_in=40, n_out=20, memory=100_000,
                            acc_factor=1.5)
        prob.acc_nbytes = np.full(20, 60_000, dtype=np.int64)
        fra, da = plan_fra(prob), plan_da(prob)
        assert fra.n_tiles == 20  # one chunk per tile
        assert da.n_tiles <= 6


class TestDispatch:
    def test_plan_query_names(self, problem):
        for name in ("fra", "SRA", "Da", "hybrid"):
            plan = plan_query(problem, name)
            assert isinstance(plan, QueryPlan)

    def test_unknown_strategy(self, problem):
        with pytest.raises(ValueError, match="unknown strategy"):
            plan_query(problem, "MAGIC")

    def test_registry(self):
        assert set(STRATEGIES) == {"FRA", "SRA", "DA"}


@given(st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_property_all_strategies_valid_on_random_problems(seed):
    rng = np.random.default_rng(seed)
    n_procs = int(rng.integers(1, 6))
    prob = make_problem(
        rng,
        n_procs=n_procs,
        n_in=int(rng.integers(1, 60)),
        n_out=int(rng.integers(1, 20)),
        memory=int(rng.integers(50_000, 2_000_000)),
    )
    for name in ALL:
        plan = plan_query(prob, name)
        validate_plan(plan)
        # conservation: every edge processed exactly once
        assert len(plan.edge_proc) == prob.graph.n_edges
