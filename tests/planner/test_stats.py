"""Tests for plan statistics: conservation laws and known totals."""

import numpy as np
import pytest

from repro.planner.stats import plan_stats
from repro.planner.strategies import plan_da, plan_fra, plan_query, plan_sra

from helpers import make_problem


@pytest.fixture
def problem(rng):
    return make_problem(rng, n_procs=4, n_in=100, n_out=12, memory=300_000)


@pytest.mark.parametrize("name", ["FRA", "SRA", "DA", "HYBRID"])
class TestConservation:
    def test_every_edge_reduced_exactly_once(self, problem, name):
        st = plan_stats(plan_query(problem, name))
        assert st.reduction_pairs.sum() == problem.graph.n_edges

    def test_sent_equals_received(self, problem, name):
        st = plan_stats(plan_query(problem, name))
        assert st.sent_bytes.sum() == st.recv_bytes.sum()

    def test_read_bytes_match_plan(self, problem, name):
        plan = plan_query(problem, name)
        st = plan_stats(plan)
        assert st.read_bytes.sum() == plan.total_read_bytes

    def test_outputs_once_each(self, problem, name):
        st = plan_stats(plan_query(problem, name))
        assert st.output_chunks.sum() == problem.n_out

    def test_write_bytes(self, problem, name):
        st = plan_stats(plan_query(problem, name))
        assert st.write_bytes.sum() == problem.outputs.nbytes.sum()


class TestStrategySpecificTotals:
    def test_fra_init_allocations(self, problem):
        st = plan_stats(plan_fra(problem))
        assert st.init_chunks.sum() == problem.n_out * problem.n_procs

    def test_da_init_allocations(self, problem):
        st = plan_stats(plan_da(problem))
        assert st.init_chunks.sum() == problem.n_out
        assert st.combine_ops.sum() == 0

    def test_fra_combine_ops(self, problem):
        st = plan_stats(plan_fra(problem))
        assert st.combine_ops.sum() == problem.n_out * (problem.n_procs - 1)

    def test_sra_comm_at_most_fra(self, problem):
        fra = plan_stats(plan_fra(problem))
        sra = plan_stats(plan_sra(problem))
        assert sra.sent_bytes.sum() <= fra.sent_bytes.sum()

    def test_da_comm_is_input_forwarding_only(self, problem):
        plan = plan_da(problem)
        st = plan_stats(plan)
        assert st.sent_bytes.sum() == plan.input_transfers.total_bytes(
            problem.inputs.nbytes
        )

    def test_load_imbalance_at_least_one(self, problem):
        for name in ("FRA", "DA"):
            assert plan_stats(plan_query(problem, name)).load_imbalance >= 1.0

    def test_table_row_smoke(self, problem):
        row = plan_stats(plan_fra(problem)).table_row()
        assert "FRA" in row and "tiles" in row
