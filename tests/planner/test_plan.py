"""Tests for QueryPlan traffic derivation on a hand-built problem.

Every number below is worked out by hand from the paper's strategy
definitions, so these tests pin the exact semantics of reads, input
forwarding and ghost shipment.
"""

import numpy as np
import pytest

from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_da, plan_fra, plan_sra
from repro.planner.validate import validate_plan
from repro.util.units import MB


def tiny_problem(memory=MB):
    """2 procs; 3 inputs (owners 0,0,1); 2 outputs (owners 0,1).

    Edges: in0 -> out0, in1 -> {out0, out1}, in2 -> out1.
    """
    in_los = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
    inputs = ChunkSet(
        in_los,
        in_los + 1,
        np.array([100, 200, 300], dtype=np.int64),
        node=np.array([0, 0, 1], dtype=np.int32),
        disk=np.zeros(3, dtype=np.int32),
    )
    out_los = np.array([[0.0, 0.0], [2.0, 0.0]])
    outputs = ChunkSet(
        out_los,
        out_los + 1.5,
        np.array([50, 60], dtype=np.int64),
        node=np.array([0, 1], dtype=np.int32),
        disk=np.zeros(2, dtype=np.int32),
    )
    graph = ChunkGraph.from_lists(3, 2, [[0], [0, 1], [1]])
    return PlanningProblem(
        n_procs=2,
        memory_per_proc=np.int64(memory),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=np.array([80, 90], dtype=np.int64),
    )


class TestFRATraffic:
    def test_single_tile(self):
        plan = plan_fra(tiny_problem())
        validate_plan(plan)
        assert plan.n_tiles == 1

    def test_holders_everywhere(self):
        plan = plan_fra(tiny_problem())
        assert plan.holders_of(0).tolist() == [0, 1]
        assert plan.holders_of(1).tolist() == [0, 1]
        assert plan.ghost_count == 2

    def test_reads_by_input_owner(self):
        plan = plan_fra(tiny_problem())
        r = plan.reads
        triples = sorted(zip(r.tile.tolist(), r.chunk.tolist(), r.proc.tolist()))
        assert triples == [(0, 0, 0), (0, 1, 0), (0, 2, 1)]

    def test_no_input_transfers(self):
        plan = plan_fra(tiny_problem())
        assert len(plan.input_transfers) == 0

    def test_ghost_transfers(self):
        plan = plan_fra(tiny_problem())
        g = plan.ghost_transfers
        rows = sorted(zip(g.chunk.tolist(), g.src.tolist(), g.dst.tolist()))
        assert rows == [(0, 1, 0), (1, 0, 1)]
        assert g.total_bytes(plan.problem.acc_nbytes) == 80 + 90

    def test_comm_per_proc(self):
        plan = plan_fra(tiny_problem())
        sent, recv = plan.comm_bytes_per_proc()
        assert sent.tolist() == [90, 80]
        assert recv.tolist() == [80, 90]


class TestSRATraffic:
    def test_ghosts_only_where_input_projects(self):
        plan = plan_sra(tiny_problem())
        validate_plan(plan)
        # out0: all projecting input on proc 0 = owner -> no ghost
        assert plan.holders_of(0).tolist() == [0]
        # out1: input on both procs -> ghost on proc 0
        assert plan.holders_of(1).tolist() == [0, 1]
        assert plan.ghost_count == 1

    def test_ghost_transfer_subset_of_fra(self):
        prob = tiny_problem()
        sra = plan_sra(prob).ghost_transfers
        rows = list(zip(sra.chunk.tolist(), sra.src.tolist(), sra.dst.tolist()))
        assert rows == [(1, 0, 1)]

    def test_same_reads_as_fra(self):
        prob = tiny_problem()
        fra, sra = plan_fra(prob), plan_sra(prob)
        assert sorted(zip(fra.reads.tile, fra.reads.chunk)) == sorted(
            zip(sra.reads.tile, sra.reads.chunk)
        )


class TestDATraffic:
    def test_no_ghosts(self):
        plan = plan_da(tiny_problem())
        validate_plan(plan)
        assert plan.ghost_count == 0
        assert len(plan.ghost_transfers) == 0

    def test_edges_at_output_owner(self):
        plan = plan_da(tiny_problem())
        edge_in, edge_out = plan.edge_arrays
        expected = plan.problem.output_owner[edge_out]
        assert plan.edge_proc.tolist() == expected.tolist()

    def test_input_forwarding(self):
        plan = plan_da(tiny_problem())
        t = plan.input_transfers
        rows = list(zip(t.chunk.tolist(), t.src.tolist(), t.dst.tolist()))
        # only in1's edge to out1 (owner 1) crosses processors
        assert rows == [(1, 0, 1)]
        assert t.total_bytes(plan.problem.inputs.nbytes) == 200

    def test_reads_unchanged(self):
        plan = plan_da(tiny_problem())
        r = plan.reads
        assert sorted(zip(r.chunk.tolist(), r.proc.tolist())) == [(0, 0), (1, 0), (2, 1)]


class TestTilingAndMultiplicity:
    def test_tight_memory_splits_tiles_and_rereads(self):
        # Budget fits one accumulator chunk at a time -> 2 tiles under
        # FRA; in1 maps to outputs in both tiles -> read twice.
        prob = tiny_problem(memory=100)
        plan = plan_fra(prob)
        validate_plan(plan)
        assert plan.n_tiles == 2
        r = plan.reads
        assert len(r) == 4  # in0 once, in1 twice, in2 once
        assert plan.read_multiplicity == pytest.approx(4 / 3)
        counts = np.bincount(r.chunk, minlength=3)
        assert counts.tolist() == [1, 2, 1]

    def test_da_fewer_or_equal_tiles(self):
        prob = tiny_problem(memory=100)
        assert plan_da(prob).n_tiles <= plan_fra(prob).n_tiles

    def test_total_read_bytes(self):
        prob = tiny_problem(memory=100)
        plan = plan_fra(prob)
        assert plan.total_read_bytes == 100 + 200 * 2 + 300

    def test_summary_smoke(self):
        s = plan_fra(tiny_problem()).summary()
        assert "FRA" in s and "tiles" in s


class TestInitFromOutput:
    def test_init_transfers_mirror_ghosts(self):
        prob = tiny_problem()
        prob.init_from_output = True
        plan = plan_fra(prob)
        init = plan.init_transfers
        ghost = plan.ghost_transfers
        assert len(init) == len(ghost)
        assert init.src.tolist() == ghost.dst.tolist()
        assert init.dst.tolist() == ghost.src.tolist()

    def test_disabled_by_default(self):
        plan = plan_fra(tiny_problem())
        assert len(plan.init_transfers) == 0


class TestPlanShapeValidation:
    def test_wrong_tile_array_length(self):
        prob = tiny_problem()
        with pytest.raises(ValueError):
            QueryPlan(
                "X", prob, 1,
                np.zeros(5, dtype=np.int64),
                np.arange(3, dtype=np.int64),
                np.zeros(2, dtype=np.int64),
                np.zeros(prob.graph.n_edges, dtype=np.int64),
            )

    def test_wrong_edge_proc_length(self):
        prob = tiny_problem()
        with pytest.raises(ValueError):
            QueryPlan(
                "X", prob, 1,
                np.zeros(2, dtype=np.int64),
                np.array([0, 1, 2], dtype=np.int64),
                np.array([0, 1], dtype=np.int64),
                np.zeros(99, dtype=np.int64),
            )
