"""Tests for the cost model and strategy selection."""

import numpy as np
import pytest

from repro.emulator import SATEmulator, VMEmulator
from repro.machine.config import ComputeCosts
from repro.machine.presets import ibm_sp
from repro.planner.costmodel import CostModel, estimate_cost, select_strategy
from repro.planner.strategies import plan_da, plan_fra, plan_query
from repro.sim.query_sim import simulate_query

from helpers import SMALL_COSTS, make_problem, small_machine


@pytest.fixture
def problem(rng):
    return make_problem(rng, n_procs=4, n_in=80, n_out=12, memory=500_000)


class TestEstimates:
    def test_positive_components(self, problem):
        m = small_machine()
        est = estimate_cost(plan_fra(problem), m, SMALL_COSTS)
        assert est.total > 0
        assert est.reduction > 0
        assert est.init >= 0 and est.combine >= 0 and est.output > 0

    def test_da_has_no_combine_cost(self, problem):
        est = estimate_cost(plan_da(problem), small_machine(), SMALL_COSTS)
        assert est.combine == 0.0

    def test_fra_combine_positive_when_multi_proc(self, problem):
        est = estimate_cost(plan_fra(problem), small_machine(), SMALL_COSTS)
        assert est.combine > 0.0

    def test_zero_compute_costs(self, problem):
        zero = ComputeCosts(0, 0, 0, 0)
        est = estimate_cost(plan_fra(problem), small_machine(), zero)
        assert est.total > 0  # I/O and comm still cost time

    def test_row_smoke(self, problem):
        row = estimate_cost(plan_fra(problem), small_machine(), SMALL_COSTS).row()
        assert "est" in row

    def test_machine_proc_count_must_match_for_sim_but_not_model(self, problem):
        # the cost model itself doesn't require matching machines, but
        # using the plan's problem is the supported path
        est = CostModel(small_machine(4), SMALL_COSTS).estimate(plan_fra(problem))
        assert est.total > 0


class TestSelection:
    def test_returns_cheapest(self, problem):
        m = small_machine()
        best, estimates = select_strategy(problem, m, SMALL_COSTS)
        assert set(estimates) == {"FRA", "SRA", "DA"}
        assert estimates[best.strategy].total == min(e.total for e in estimates.values())

    def test_subset_of_strategies(self, problem):
        best, estimates = select_strategy(
            problem, small_machine(), SMALL_COSTS, ["FRA", "DA"]
        )
        assert set(estimates) == {"FRA", "DA"}

    def test_empty_candidates_rejected(self, problem):
        with pytest.raises(ValueError):
            select_strategy(problem, small_machine(), SMALL_COSTS, [])


class TestPrunePricing:
    """The model must price value-synopsis pruning: chunks the problem
    marks as prunable are never read or aggregated, so their reads,
    bytes and pairs must come off the estimate."""

    def _marked(self, problem, stride=2):
        from repro.planner.problem import PlanningProblem

        n_in = len(problem.inputs)
        return PlanningProblem(
            n_procs=problem.n_procs,
            memory_per_proc=problem.memory_per_proc,
            inputs=problem.inputs,
            outputs=problem.outputs,
            graph=problem.graph,
            acc_nbytes=problem.acc_nbytes,
            input_global_ids=np.arange(n_in, dtype=np.int64),
            pruned_input_ids=np.arange(0, n_in, stride, dtype=np.int64),
            pruned_bytes=int(problem.inputs.nbytes[::stride].sum()),
        )

    @pytest.mark.parametrize("per_tile", [False, True])
    def test_pruned_strictly_cheaper(self, problem, per_tile):
        model = CostModel(small_machine(), SMALL_COSTS, per_tile=per_tile)
        plain = model.estimate(plan_fra(problem)).total
        pruned = model.estimate(plan_fra(self._marked(problem))).total
        assert pruned < plain

    @pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA"])
    def test_all_strategies_priced(self, problem, strategy):
        model = CostModel(small_machine(), SMALL_COSTS)
        plain = model.estimate(plan_query(problem, strategy)).total
        pruned = model.estimate(
            plan_query(self._marked(problem), strategy)
        ).total
        assert pruned < plain

    def test_no_prune_info_is_identity(self, problem):
        """A problem without prune markings prices exactly as before."""
        from repro.planner.problem import PlanningProblem

        n_in = len(problem.inputs)
        unmarked = PlanningProblem(
            n_procs=problem.n_procs,
            memory_per_proc=problem.memory_per_proc,
            inputs=problem.inputs,
            outputs=problem.outputs,
            graph=problem.graph,
            acc_nbytes=problem.acc_nbytes,
            input_global_ids=np.arange(n_in, dtype=np.int64),
        )
        model = CostModel(small_machine(), SMALL_COSTS)
        assert model.estimate(plan_fra(unmarked)).total == pytest.approx(
            model.estimate(plan_fra(problem)).total
        )


class TestAccuracyAgainstSimulator:
    """Section 6 asks for 'simple but reasonably accurate' models; we
    require estimates within a factor of two of the simulator and the
    *ranking* of clearly separated strategies to be preserved."""

    @pytest.mark.parametrize("emu_cls,scale", [(SATEmulator, 1), (VMEmulator, 1)])
    def test_within_factor_two(self, emu_cls, scale):
        emu = emu_cls() if emu_cls is not SATEmulator else SATEmulator(base_chunks=3000)
        sc = emu.scenario(scale, seed=3)
        m = ibm_sp(8)
        prob = sc.problem(m)
        model = CostModel(m, sc.costs)
        for name in ("FRA", "DA"):
            plan = plan_query(prob, name)
            est = model.estimate(plan).total
            sim = simulate_query(plan, m, sc.costs).total_time
            assert est == pytest.approx(sim, rel=1.0), (name, est, sim)

    def test_ranking_preserved_when_gap_large(self):
        """SAT at scale 4 on 8 procs: DA clearly worse than FRA in the
        simulator; the model must agree on the winner."""
        sc = SATEmulator(base_chunks=2000).scenario(4, seed=3)
        m = ibm_sp(8)
        prob = sc.problem(m)
        model = CostModel(m, sc.costs)
        sims = {}
        ests = {}
        for name in ("FRA", "DA"):
            plan = plan_query(prob, name)
            sims[name] = simulate_query(plan, m, sc.costs).total_time
            ests[name] = model.estimate(plan).total
        sim_best = min(sims, key=sims.get)
        est_best = min(ests, key=ests.get)
        if abs(sims["FRA"] - sims["DA"]) > 0.25 * max(sims.values()):
            assert sim_best == est_best


class TestRefinedModel:
    """Section 6's refinement question: the per-tile model must beat
    the simple model exactly where the simple one is weakest."""

    def test_refined_estimates_positive_and_consistent(self, problem):
        m = small_machine()
        simple = CostModel(m, SMALL_COSTS).estimate(plan_fra(problem))
        refined = CostModel(m, SMALL_COSTS, per_tile=True).estimate(plan_fra(problem))
        assert refined.total > 0
        # per-tile barriers can only add serialization
        assert refined.total >= simple.total - 1e-9

    def test_single_tile_models_agree(self, rng):
        # with one tile there are no extra barriers: both models see
        # the same work
        prob = make_problem(rng, n_procs=4, memory=1 << 40)
        m = small_machine()
        plan = plan_fra(prob)
        assert plan.n_tiles == 1
        simple = CostModel(m, SMALL_COSTS).estimate(plan)
        refined = CostModel(m, SMALL_COSTS, per_tile=True).estimate(plan)
        assert refined.total == pytest.approx(simple.total, rel=0.01)

    def test_refined_beats_simple_on_many_tile_fra(self):
        """The documented weak spot: FRA at large P with many tiles."""
        sc = SATEmulator(base_chunks=3000).scenario(1, seed=3)
        m = ibm_sp(32)
        prob = sc.problem(m)
        plan = plan_query(prob, "FRA")
        assert plan.n_tiles > 1
        sim = simulate_query(plan, m, sc.costs).total_time
        err_simple = abs(CostModel(m, sc.costs).estimate(plan).total - sim) / sim
        err_refined = abs(
            CostModel(m, sc.costs, per_tile=True).estimate(plan).total - sim
        ) / sim
        assert err_refined < err_simple
        assert err_refined < 0.15
