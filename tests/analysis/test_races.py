"""Simulated-race detector tests.

A clean engine run over the plan it was built from reports nothing;
an injected unauthorized accumulator write (an engine/plan mismatch
that would be a data race on the real machine) is flagged.
"""

import numpy as np
import pytest

from repro.aggregation.functions import SumAggregation
from repro.analysis import RaceDetector, races_enabled_by_env
from repro.dataset.chunkset import ChunkSet
from repro.dataset.graph import ChunkGraph
from repro.planner.plan import QueryPlan
from repro.planner.problem import PlanningProblem
from repro.planner.strategies import plan_da, plan_fra, plan_query
from repro.runtime.engine import execute_plan

from helpers import make_functional_setup, make_problem


def build_pinned_problem(chunks, grid, mapping, spec, n_procs=2):
    """A functional problem with every chunk pinned to processor 0,
    so the set of plan-authorized writers is known exactly."""
    metas = [c.meta for c in chunks]
    inputs = ChunkSet.from_metas(metas)
    zeros_in = np.zeros(len(inputs), dtype=np.int32)
    inputs = inputs.with_placement(zeros_in, zeros_in.copy())
    outputs = grid.chunkset()
    zeros_out = np.zeros(len(outputs), dtype=np.int32)
    outputs = outputs.with_placement(zeros_out, zeros_out.copy())
    graph = ChunkGraph.from_geometry(inputs, outputs, mapping)
    acc = np.asarray(
        [spec.acc_bytes(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)],
        dtype=np.int64,
    )
    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(1 << 15),
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=acc,
    )


def rebuild(plan, **overrides):
    kw = dict(
        strategy=plan.strategy,
        problem=plan.problem,
        n_tiles=plan.n_tiles,
        tile_of_output=plan.tile_of_output.copy(),
        holders_indptr=plan.holders_indptr.copy(),
        holders_ids=plan.holders_ids.copy(),
        edge_proc=plan.edge_proc.copy(),
    )
    kw.update(overrides)
    return QueryPlan(**kw)


class TestEngineIntegration:
    @pytest.mark.parametrize("strategy", ["FRA", "SRA", "DA", "HYBRID"])
    def test_clean_execution_reports_nothing(self, rng, strategy):
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = build_pinned_problem(chunks, grid, mapping, spec, n_procs=3)
        plan = plan_query(prob, strategy)
        result = execute_plan(
            plan, lambda i: chunks[i], mapping, grid, spec, detect_races=True
        )
        assert result.race_diagnostics == []

    def test_injected_unauthorized_write_is_flagged(self, rng):
        """The acceptance scenario: an engine drifting from the plan.

        Every chunk lives on processor 0, so under FRA the plan
        authorizes only processor 0 to aggregate.  Rerouting every
        edge to processor 1 (a legal holder -- FRA replicates
        everywhere -- so the corrupted plan still executes) is an
        unauthorized accumulator write the detector must flag.
        """
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = build_pinned_problem(chunks, grid, mapping, spec, n_procs=2)
        plan = plan_fra(prob)
        assert set(plan.edge_proc.tolist()) == {0}
        detector = RaceDetector(plan)
        corrupted = rebuild(plan, edge_proc=np.ones_like(plan.edge_proc))

        result = execute_plan(
            corrupted, lambda i: chunks[i], mapping, grid, spec,
            race_detector=detector,
        )
        assert result.n_aggregations > 0
        flagged = {d.code for d in result.race_diagnostics}
        assert "ADR201" in flagged
        assert any("unauthorized accumulator write" in d.message
                   for d in result.race_diagnostics)

    def test_undeclared_combine_is_flagged(self, rng):
        """Executing a ghost-shipping plan against a DA detector: the
        combines (and ghost allocations) were never declared."""
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng)
        prob = build_pinned_problem(chunks, grid, mapping, spec, n_procs=2)
        da = plan_da(prob)
        fra = plan_fra(prob)
        assert len(fra.ghost_transfers) > 0
        detector = RaceDetector(da)
        result = execute_plan(
            fra, lambda i: chunks[i], mapping, grid, spec, race_detector=detector
        )
        flagged = {d.code for d in result.race_diagnostics}
        assert "ADR202" in flagged  # combine the plan never declared
        assert "ADR204" in flagged  # ghost allocated on a non-holder


class TestDetectorUnit:
    @pytest.fixture
    def plan(self, rng):
        return plan_fra(make_problem(rng, n_procs=3, n_in=30, n_out=8))

    def test_happens_before_write_after_ship(self, plan):
        det = RaceDetector(plan)
        gt = plan.ghost_transfers
        assert len(gt)
        o, src, dst, t = (int(gt.chunk[0]), int(gt.src[0]),
                          int(gt.dst[0]), int(gt.tile[0]))
        det.on_allocate(src, o, t)
        det.on_allocate(dst, o, t)
        det.on_combine(src, dst, o, t)
        det.on_aggregate(src, o, t)  # write after the ghost shipped
        assert "ADR203" in {d.code for d in det.report()}

    def test_access_before_initialization(self, plan):
        det = RaceDetector(plan)
        _, edge_out = plan.edge_arrays
        o = int(edge_out[0])
        q = int(plan.edge_proc[0])
        det.on_aggregate(q, o, int(plan.tile_of_output[o]))  # no allocate
        assert "ADR206" in {d.code for d in det.report()}

    def test_output_before_all_combines(self, plan):
        det = RaceDetector(plan)
        gt = plan.ghost_transfers
        o = int(gt.chunk[0])
        t = int(gt.tile[0])
        owner = int(plan.problem.output_owner[o])
        det.on_allocate(owner, o, t)
        det.on_output(owner, o, t)  # declared ghosts never arrived
        assert "ADR205" in {d.code for d in det.report()}

    def test_tile_state_resets(self, plan):
        det = RaceDetector(plan)
        gt = plan.ghost_transfers
        o, src, dst, t = (int(gt.chunk[0]), int(gt.src[0]),
                          int(gt.dst[0]), int(gt.tile[0]))
        det.on_allocate(src, o, t)
        det.on_combine(src, dst, o, t)
        det.end_tile(t)
        # After the tile boundary the ship-freeze no longer applies.
        det.on_allocate(src, o, t + 1)
        det.on_aggregate(src, o, t + 1)
        assert "ADR203" not in {d.code for d in det.report()}

    def test_event_log_records_accesses(self, plan):
        det = RaceDetector(plan)
        det.on_allocate(0, 0, 0)
        det.on_aggregate(0, 0, 0)
        kinds = [e.kind for e in det.events]
        assert kinds == ["allocate", "aggregate"]
        assert [e.seq for e in det.events] == [0, 1]


class TestEnvOptIn:
    def test_flag_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_DETECT_RACES", raising=False)
        assert not races_enabled_by_env()
        for val in ("1", "true", "YES", " on "):
            monkeypatch.setenv("REPRO_DETECT_RACES", val)
            assert races_enabled_by_env()
        monkeypatch.setenv("REPRO_DETECT_RACES", "0")
        assert not races_enabled_by_env()

    def test_env_enables_detection(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_DETECT_RACES", "1")
        spec = SumAggregation(1)
        _, _, chunks, mapping, grid = make_functional_setup(rng, n_items=80)
        prob = build_pinned_problem(chunks, grid, mapping, spec, n_procs=2)
        plan = plan_fra(prob)
        result = execute_plan(plan, lambda i: chunks[i], mapping, grid, spec)
        # Detection ran (and, the plan being sound, found nothing).
        assert result.race_diagnostics == []
