"""Tests for the static communication-protocol checker (ADR6xx).

The positive half proves every corpus plan's message flow clean; the
negative half applies one seeded mutation per code to a clean flow and
asserts exactly that code fires -- the checker must neither miss the
defect nor cascade into unrelated codes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.comm import check_message_flow, check_plan_comm
from repro.analysis.corpus import corpus_problems
from repro.planner.strategies import plan_query
from repro.runtime.phases import MESSAGE_OPS, MessageFlow

from helpers import make_problem


def codes(diags):
    return {d.code for d in diags}


def mutated(flow, fn):
    """A copy of *flow* with *fn* applied to its mutable event dict."""
    events = {p: list(evs) for p, evs in flow.events.items()}
    fn(events)
    return MessageFlow(n_procs=flow.n_procs, n_tiles=flow.n_tiles, events=events)


@pytest.fixture(scope="module")
def corpus_flows():
    """(label, plan, flow) for every synthetic corpus problem/strategy."""
    out = []
    for label, prob in corpus_problems(include_emulators=False):
        for strategy in ("FRA", "SRA", "DA", "HYBRID"):
            plan = plan_query(prob, strategy)
            out.append((f"{label} / {strategy}", plan, plan.schedule().message_flow()))
    return out


class TestCleanPlans:
    def test_corpus_plans_model_check_clean(self, corpus_flows):
        for label, plan, flow in corpus_flows:
            diags = check_plan_comm(plan, flow)
            assert diags == [], f"{label}: " + "; ".join(d.format() for d in diags)

    def test_flow_shape(self, corpus_flows):
        for _label, plan, flow in corpus_flows:
            assert set(flow.events) == set(range(plan.problem.n_procs))
            for evs in flow.events.values():
                for op, _tile, _index, _peer in evs:
                    assert op in MESSAGE_OPS

    def test_sends_recvs_views_agree_with_events(self, corpus_flows):
        _label, _plan, flow = corpus_flows[0]
        n_sends = sum(
            1 for evs in flow.events.values() for e in evs if e[0].startswith("send")
        )
        n_recvs = sum(
            1 for evs in flow.events.values() for e in evs if e[0].startswith("recv")
        )
        assert len(list(flow.sends())) == n_sends
        assert len(list(flow.recvs())) == n_recvs
        for rank, kind, tile, index, peer in flow.sends():
            assert (f"send_{kind}", tile, index, peer) in flow.events[rank]


@given(
    seed=st.integers(0, 2**31),
    strategy=st.sampled_from(["FRA", "SRA", "DA", "HYBRID"]),
)
@settings(max_examples=15, deadline=None)
def test_property_planned_flows_are_clean(seed, strategy):
    """Whatever the planner produces model-checks clean: deadlock-free,
    matched send/recv multisets, complete combines, recovery-safe keys."""
    rng = np.random.default_rng(seed)
    prob = make_problem(
        rng,
        n_procs=int(rng.integers(2, 6)),
        n_in=int(rng.integers(10, 70)),
        n_out=int(rng.integers(2, 14)),
        memory=int(rng.integers(100_000, 1_000_000)),
    )
    plan = plan_query(prob, strategy)
    assert check_plan_comm(plan) == []


class TestSeededMutations:
    """One mutation per code; exactly that code must fire."""

    def _first_plan_with(self, corpus_flows, op):
        for label, plan, flow in corpus_flows:
            if any(e[0] == op for evs in flow.events.values() for e in evs):
                return label, plan, flow
        raise AssertionError(f"no corpus flow carries a {op} event")

    def test_adr600_emit_with_peer(self, corpus_flows):
        _label, plan, flow = corpus_flows[0]

        def corrupt(events):
            for evs in events.values():
                for i, e in enumerate(evs):
                    if e[0] == "emit":
                        evs[i] = (e[0], e[1], e[2], 99)
                        return

        assert codes(check_plan_comm(plan, mutated(flow, corrupt))) == {"ADR600"}

    def test_adr600_tile_out_of_range(self, corpus_flows):
        _label, plan, flow = corpus_flows[0]

        def corrupt(events):
            for evs in events.values():
                if evs:
                    op, _tile, index, peer = evs[0]
                    evs[0] = (op, -5, index, peer)
                    return

        assert codes(check_plan_comm(plan, mutated(flow, corrupt))) == {"ADR600"}

    def test_adr601_dropped_receive(self, corpus_flows):
        _label, plan, flow = self._first_plan_with(corpus_flows, "recv_seg")

        def drop(events):
            for evs in events.values():
                for i, e in enumerate(evs):
                    if e[0] == "recv_seg":
                        del evs[i]
                        return

        assert codes(check_plan_comm(plan, mutated(flow, drop))) == {"ADR601"}

    def test_adr602_reordered_receive_deadlocks(self):
        """Moving one receive ahead of the send its sender transitively
        waits on creates a wait cycle.  (Projections of one global
        schedule are always acyclic, so the mutation must reorder one
        rank's program, not the global order.)"""
        probs = list(corpus_problems(include_emulators=False))
        plan = plan_query(probs[2][1], "HYBRID")
        flow = plan.schedule().message_flow()
        evs0 = list(flow.events[0])
        moved = ("recv_ghost", 0, 2, 3)
        anchor = ("send_seg", 0, 23, 3)
        assert moved in evs0 and anchor in evs0  # seeded plan is deterministic
        evs0.remove(moved)
        evs0.insert(evs0.index(anchor), moved)
        events = {p: list(e) for p, e in flow.events.items()}
        events[0] = evs0
        bad = MessageFlow(n_procs=flow.n_procs, n_tiles=flow.n_tiles, events=events)
        diags = check_plan_comm(plan, bad)
        assert codes(diags) == {"ADR602"}
        assert "wait cycle" in diags[0].message

    def test_adr602_handcrafted_cross_wait(self):
        """Two ranks each receiving before sending what the other
        waits on: the minimal ABBA of message passing."""
        flow = MessageFlow(
            n_procs=2,
            n_tiles=1,
            events={
                0: [("recv_ghost", 0, 0, 1), ("send_ghost", 0, 1, 1)],
                1: [("recv_ghost", 0, 1, 0), ("send_ghost", 0, 0, 0)],
            },
        )
        diags = check_message_flow(flow)
        assert codes(diags) == {"ADR602"}

    def test_adr602_swapped_order_is_clean(self):
        """The same traffic with sends first has a serving schedule."""
        flow = MessageFlow(
            n_procs=2,
            n_tiles=1,
            events={
                0: [("send_ghost", 0, 1, 1), ("recv_ghost", 0, 0, 1)],
                1: [("send_ghost", 0, 0, 0), ("recv_ghost", 0, 1, 0)],
            },
        )
        assert check_message_flow(flow) == []

    def test_adr603_dropped_ghost_transfer(self, corpus_flows):
        _label, plan, flow = self._first_plan_with(corpus_flows, "send_ghost")
        ghost = next(
            e
            for evs in flow.events.values()
            for e in evs
            if e[0] == "send_ghost"
        )

        def drop_pair(events):
            for p, evs in events.items():
                events[p] = [
                    e
                    for e in evs
                    if not (
                        e[0] in ("send_ghost", "recv_ghost")
                        and e[1] == ghost[1]
                        and e[2] == ghost[2]
                    )
                ]

        assert codes(check_plan_comm(plan, mutated(flow, drop_pair))) == {"ADR603"}

    def test_adr604_duplicate_emit(self, corpus_flows):
        _label, plan, flow = corpus_flows[0]

        def dup(events):
            for evs in events.values():
                for e in evs:
                    if e[0] == "emit":
                        evs.append(e)
                        return

        assert codes(check_plan_comm(plan, mutated(flow, dup))) == {"ADR604"}

    def test_adr604_duplicate_message_key(self, corpus_flows):
        _label, plan, flow = self._first_plan_with(corpus_flows, "send_ghost")

        def dup(events):
            for evs in events.values():
                for e in evs:
                    if e[0] == "send_ghost":
                        evs.append(e)
                        return

        diags = check_plan_comm(plan, mutated(flow, dup))
        assert "ADR604" in codes(diags)
