"""The CI plan corpus must verify clean (and stay deterministic)."""

import numpy as np

from repro.analysis.corpus import (
    corpus_problems,
    functional_workloads,
    main,
    verify_comm_corpus,
    verify_corpus,
    verify_fault_corpus,
    verify_functional_corpus,
)


class TestCorpus:
    def test_synthetic_corpus_verifies_clean(self):
        assert verify_corpus(include_emulators=False) == []

    def test_corpus_is_deterministic(self):
        (label_a, prob_a), *_ = corpus_problems(include_emulators=False)
        (label_b, prob_b), *_ = corpus_problems(include_emulators=False)
        assert label_a == label_b
        np.testing.assert_array_equal(prob_a.inputs.node, prob_b.inputs.node)
        np.testing.assert_array_equal(
            prob_a.graph.edge_arrays()[0], prob_b.graph.edge_arrays()[0]
        )

    def test_cli_exits_zero(self, capsys):
        assert main(["--no-emulators"]) == 0
        assert "zero diagnostics" in capsys.readouterr().out

    def test_cli_json_report(self, capsys):
        import json

        assert main(["--no-emulators", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.analysis.corpus"
        assert doc["mode"] == "verify"
        assert doc["summary"] == {"plans": 24, "findings": 0}

    def test_cli_rejects_unknown_arguments(self, capsys):
        assert main(["--bogus"]) == 2
        assert "usage" in capsys.readouterr().err


class TestCommCorpus:
    """The communication model check over the synthetic corpus.

    The full 36-plan sweep (emulators included) is the CI job
    ``python -m repro.analysis.corpus --comm``; tier-1 proves the 24
    synthetic plans here.
    """

    def test_synthetic_corpus_model_checks_clean(self):
        n_plans, findings = verify_comm_corpus(include_emulators=False)
        assert n_plans == 24
        assert findings == [], "\n".join(
            f"{label}: {d.format()}" for label, d in findings
        )

    def test_cli_comm_exits_zero(self, capsys):
        assert main(["--comm", "--no-emulators"]) == 0
        out = capsys.readouterr().out
        assert "model-checked" in out and "zero diagnostics" in out


class TestFunctionalCorpus:
    """Payload-carrying workloads executed on both backends.

    The full sweep -- 4 strategies x 9 workloads plus one
    predicate-bearing (``where=``) pruned plan per workload, 45 plans,
    each run sequentially with race detection *and* on the
    multiprocess backend -- is the CI job ``python -m
    repro.analysis.corpus --functional``; here one strategy keeps
    tier-1 fast while still exercising the whole pipeline end to end.
    """

    def test_workloads_are_deterministic(self):
        a = [label for label, _ in functional_workloads()]
        b = [label for label, _ in functional_workloads()]
        assert a == b and len(a) == 9

    def test_one_strategy_verifies_clean(self):
        n_plans, failures = verify_functional_corpus(strategies=("FRA",))
        # 9 workloads plus one where= pruned plan and one
        # auto-resolved plan per workload
        assert n_plans == 27
        assert failures == [], "\n".join(failures)


class TestFaultCorpus:
    """The fault matrix over the functional corpus.

    The full 9-workload x 3-scenario sweep is the CI job ``python -m
    repro.analysis.corpus --faults``; here one workload (all three
    scenarios: corrupt+degrade, flaky+retry, crash+recover) keeps
    tier-1 fast while exercising every fault path end to end.
    """

    def test_first_workload_survives_fault_matrix(self, monkeypatch):
        import repro.analysis.corpus as corpus

        first = next(iter(functional_workloads()))
        monkeypatch.setattr(corpus, "functional_workloads", lambda: [first])
        n_scenarios, failures = verify_fault_corpus(strategies=("FRA",))
        assert n_scenarios == 3
        assert failures == [], "\n".join(f"{a}: {b}" for a, b in failures)
