"""The CI plan corpus must verify clean (and stay deterministic)."""

import numpy as np

from repro.analysis.corpus import corpus_problems, main, verify_corpus


class TestCorpus:
    def test_synthetic_corpus_verifies_clean(self):
        assert verify_corpus(include_emulators=False) == []

    def test_corpus_is_deterministic(self):
        (label_a, prob_a), *_ = corpus_problems(include_emulators=False)
        (label_b, prob_b), *_ = corpus_problems(include_emulators=False)
        assert label_a == label_b
        np.testing.assert_array_equal(prob_a.inputs.node, prob_b.inputs.node)
        np.testing.assert_array_equal(
            prob_a.graph.edge_arrays()[0], prob_b.graph.edge_arrays()[0]
        )

    def test_cli_exits_zero(self, capsys):
        assert main(["--no-emulators"]) == 0
        assert "zero diagnostics" in capsys.readouterr().out
