"""Negative-path tests for the plan invariant verifier.

One test per diagnostic code: hand-corrupt a sound plan and assert
the verifier pins the violation with the right ``ADR1xx`` code.
"""

import numpy as np
import pytest

from repro.analysis import Severity, verify_plan
from repro.analysis.verifier import VERIFIER_CODES
from repro.planner.plan import QueryPlan, Transfers
from repro.planner.strategies import plan_da, plan_fra, plan_sra
from repro.planner.validate import PlanValidationError, validate_plan

from helpers import make_chunkset, make_problem


@pytest.fixture
def problem(rng):
    return make_problem(rng, n_procs=4, n_in=40, n_out=10, memory=500_000)


def rebuild(plan, **overrides):
    kw = dict(
        strategy=plan.strategy,
        problem=plan.problem,
        n_tiles=plan.n_tiles,
        tile_of_output=plan.tile_of_output.copy(),
        holders_indptr=plan.holders_indptr.copy(),
        holders_ids=plan.holders_ids.copy(),
        edge_proc=plan.edge_proc.copy(),
    )
    kw.update(overrides)
    return QueryPlan(**kw)


def codes(plan, **kwargs):
    return {d.code for d in verify_plan(plan, **kwargs)}


def empty_problem(rng, n_procs=2):
    from repro.dataset.graph import ChunkGraph
    from repro.planner.problem import PlanningProblem

    return PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(1 << 20),
        inputs=make_chunkset(rng, 0, placed_on=n_procs),
        outputs=make_chunkset(rng, 0, placed_on=n_procs),
        graph=ChunkGraph(0, 0, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)),
    )


class TestCleanPlans:
    def test_all_strategies_verify_clean(self, problem):
        for planner in (plan_fra, plan_sra, plan_da):
            assert verify_plan(planner(problem)) == []

    def test_empty_problem_verifies_clean(self, rng):
        assert verify_plan(plan_fra(empty_problem(rng))) == []


class TestDiagnosticCodes:
    def test_adr101_tile_out_of_range(self, problem):
        plan = plan_fra(problem)
        bad = plan.tile_of_output.copy()
        bad[0] = plan.n_tiles + 3
        assert "ADR101" in codes(rebuild(plan, tile_of_output=bad))

    def test_adr102_empty_problem_nonzero_tiles(self, rng):
        plan = plan_fra(empty_problem(rng))
        assert "ADR102" in codes(rebuild(plan, n_tiles=1))

    def test_adr103_holder_out_of_range(self, problem):
        plan = plan_fra(problem)
        bad = plan.holders_ids.copy()
        bad[0] = 99
        assert "ADR103" in codes(rebuild(plan, holders_ids=bad))

    def test_adr104_duplicate_holder(self, problem):
        plan = plan_fra(problem)
        bad = plan.holders_ids.copy()
        bad[1] = bad[0]
        assert "ADR104" in codes(rebuild(plan, holders_ids=bad))

    def test_adr105_owner_not_holder(self, problem):
        plan = plan_da(problem)
        bad = plan.holders_ids.copy()
        owner0 = int(problem.output_owner[0])
        bad[0] = (owner0 + 1) % problem.n_procs
        assert "ADR105" in codes(rebuild(plan, holders_ids=bad))

    def test_adr106_edge_proc_out_of_range(self, problem):
        plan = plan_fra(problem)
        bad = plan.edge_proc.copy()
        bad[0] = -1
        assert "ADR106" in codes(rebuild(plan, edge_proc=bad))

    def test_adr107_edge_on_non_holder(self, problem):
        plan = plan_da(problem)
        bad = plan.edge_proc.copy()
        _, edge_out = plan.edge_arrays
        owner = int(problem.output_owner[edge_out[0]])
        bad[0] = (owner + 1) % problem.n_procs
        assert "ADR107" in codes(rebuild(plan, edge_proc=bad))

    def test_adr108_memory_overflow(self, rng):
        prob = make_problem(rng, n_procs=2, n_in=20, n_out=6, memory=1 << 40)
        prob.acc_nbytes = np.full(6, 1000, dtype=np.int64)
        plan = plan_fra(prob)
        prob.memory_per_proc = np.full(2, 1500, dtype=np.int64)
        assert "ADR108" in codes(plan)

    def test_adr108_single_oversized_chunk_tolerated(self, rng):
        prob = make_problem(rng, n_procs=2, n_in=10, n_out=1, memory=100)
        prob.acc_nbytes = np.array([10_000], dtype=np.int64)
        assert verify_plan(plan_fra(prob)) == []

    def test_adr109_ghost_transfer_missing(self, problem):
        plan = plan_fra(problem)
        gt = plan.ghost_transfers
        assert len(gt), "FRA on >1 processors must ship ghosts"
        # Drop one shipment from the materialized table: a ghost is
        # held but never delivered to the owner.
        plan.__dict__["ghost_transfers"] = Transfers(
            gt.tile[:-1], gt.chunk[:-1], gt.src[:-1], gt.dst[:-1]
        )
        assert "ADR109" in codes(plan)

    def test_adr109_ghost_transfer_undeclared_extra(self, problem):
        plan = plan_da(problem)  # DA ships nothing
        empty = plan.ghost_transfers
        assert len(empty) == 0
        one = np.array([0], dtype=np.int64)
        owner0 = int(problem.output_owner[0])
        plan.__dict__["ghost_transfers"] = Transfers(
            tile=plan.tile_of_output[one],
            chunk=one,
            src=np.array([(owner0 + 1) % problem.n_procs], dtype=np.int64),
            dst=np.array([owner0], dtype=np.int64),
        )
        assert "ADR109" in codes(plan)

    def test_adr110_empty_tile_warns(self, problem):
        plan = plan_fra(problem)
        diags = verify_plan(rebuild(plan, n_tiles=plan.n_tiles + 1))
        assert {d.code for d in diags} == {"ADR110"}
        assert all(d.severity == Severity.WARNING for d in diags)

    def test_adr120_fra_not_fully_replicated(self, problem):
        plan = plan_da(problem)  # owner-only holders relabeled as FRA
        assert "ADR120" in codes(rebuild(plan, strategy="FRA"))

    def test_adr121_sra_holders_mismatch(self, problem):
        plan = plan_fra(problem)  # full replication relabeled as SRA
        assert "ADR121" in codes(rebuild(plan, strategy="SRA"))

    def test_adr122_da_with_ghosts(self, problem):
        plan = plan_fra(problem)  # replicated holders relabeled as DA
        assert "ADR122" in codes(rebuild(plan, strategy="DA"))

    def test_adr123_wrong_reduction_processor(self, problem):
        plan = plan_fra(problem)
        edge_in, _ = plan.edge_arrays
        bad = plan.edge_proc.copy()
        # Still a holder under FRA (everyone is), so only the strategy
        # contract is violated, not ADR107.
        bad[0] = (int(problem.input_owner[edge_in[0]]) + 1) % problem.n_procs
        got = codes(rebuild(plan, edge_proc=bad))
        assert "ADR123" in got and "ADR107" not in got

    def test_at_least_eight_distinct_codes_covered(self):
        # The acceptance bar: >= 8 distinct codes each have a
        # corrupted-plan test above.
        triggered = {
            "ADR101", "ADR102", "ADR103", "ADR104", "ADR105", "ADR106",
            "ADR107", "ADR108", "ADR109", "ADR110", "ADR120", "ADR121",
            "ADR122", "ADR123",
        }
        assert triggered <= set(VERIFIER_CODES)
        assert len(triggered) >= 8


class TestValidatePlanWrapper:
    def test_raises_on_error_with_code(self, problem):
        plan = plan_fra(problem)
        bad = plan.tile_of_output.copy()
        bad[0] = -5
        with pytest.raises(PlanValidationError, match=r"\[ADR101\].*tile ids"):
            validate_plan(rebuild(plan, tile_of_output=bad))

    def test_warning_does_not_raise(self, problem):
        plan = plan_fra(problem)
        validate_plan(rebuild(plan, n_tiles=plan.n_tiles + 1))  # ADR110 only

    def test_strategy_contracts_not_enforced(self, problem):
        # Historical contract: structurally executable plans pass even
        # when mislabeled; the full proof lives in verify_plan.
        validate_plan(rebuild(plan_fra(problem), strategy="DA"))

    def test_reports_extra_error_count(self, problem):
        plan = plan_fra(problem)
        bad = plan.tile_of_output.copy()
        bad[:2] = -1
        with pytest.raises(PlanValidationError, match=r"\+1 more"):
            validate_plan(rebuild(plan, tile_of_output=bad))
