"""Tests for the AST project lint pass."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import Severity, lint_paths, lint_source
from repro.analysis.lint import main


def findings(src, path="mod.py", **kwargs):
    return lint_source(textwrap.dedent(src), path, **kwargs)


def codes(src, **kwargs):
    return {d.code for d in findings(src, **kwargs)}


class TestUnseededRandom:
    def test_legacy_global_rng_flagged(self):
        assert codes("import numpy as np\nx = np.random.rand(3)\n") == {"ADR301"}
        assert codes("import numpy as np\nnp.random.seed(0)\n") == {"ADR301"}
        assert codes("import numpy\nx = numpy.random.normal(0, 1)\n") == {"ADR301"}

    def test_unseeded_default_rng_flagged(self):
        assert codes("import numpy as np\nr = np.random.default_rng()\n") == {"ADR301"}
        assert codes("import numpy as np\nr = np.random.default_rng(None)\n") == {"ADR301"}

    def test_seeded_default_rng_ok(self):
        assert codes("import numpy as np\nr = np.random.default_rng(42)\n") == set()
        assert codes("import numpy as np\nr = np.random.default_rng(seed)\n") == set()

    def test_generator_annotations_ok(self):
        assert codes(
            "import numpy as np\ndef f(rng: np.random.Generator) -> None: ...\n"
        ) == set()

    def test_rng_module_exempt(self):
        src = "import numpy as np\nr = np.random.default_rng()\n"
        assert codes(src, rng_exempt=True) == set()


class TestFloatAccumulatorEquality:
    def test_accumulator_equality_flagged(self):
        assert codes("ok = acc.data[0] == 0.5\n") == {"ADR302"}
        assert codes("ok = 1.5 != accumulator[0]\n") == {"ADR302"}
        assert codes("ok = ghost_data[0] == local_acc[0]\n") == {"ADR302"}

    def test_ordinary_float_equality_untouched(self):
        # Exact comparisons on non-accumulator values are a test-suite
        # idiom (integer-valued floats); the rule targets accumulators.
        assert codes("assert r.volume == 0.0\n") == set()
        assert codes("assert out[0, 0] == 3.0\n") == set()

    def test_structural_and_count_accesses_untouched(self):
        assert codes("ok = acc.data.shape == (10, 1)\n") == set()
        assert codes("ok = s.acc_nbytes == total\n") == set()  # byte counts
        assert codes("ok = s.bytes_in_use == spec.acc_bytes(5)\n") == set()
        assert codes("ok = spec.output(acc)[:, 0].tolist() == [3.0]\n") == set()

    def test_accumulator_ordering_ok(self):
        assert codes("ok = acc.data[0] < 0.5\n") == set()


class TestChunkMutation:
    def test_payload_assignment_flagged(self):
        assert codes("chunk.values = new\n") == {"ADR303"}
        assert codes("chunk.coords[0] = 1.0\n") == {"ADR303"}
        assert codes("my_chunk.values[idx] += 2\n") == {"ADR303"}
        assert codes("chunk.meta = other\n") == {"ADR303"}

    def test_reads_and_other_names_ok(self):
        assert codes("v = np.asarray(chunk.values)\n") == set()
        assert codes("table.values = x\n") == set()
        assert codes("chunk2 = replace(chunk)\n") == set()


class TestDunderAll:
    def test_missing_all_flagged(self):
        out = findings("def api(): ...\n", check_all=True)
        assert [d.code for d in out] == ["ADR304"]
        assert out[0].severity == Severity.WARNING

    def test_present_all_ok(self):
        assert codes('__all__ = ["api"]\ndef api(): ...\n', check_all=True) == set()

    def test_not_checked_by_default(self):
        assert codes("def api(): ...\n") == set()


class TestSuppression:
    # One line carrying two distinct findings: ADR301 (unseeded
    # global RNG) and ADR303 (chunk payload mutation).
    TWO = "import numpy as np\nchunk.values = np.random.rand(3){noqa}\n"

    def test_noqa_with_rationale_suppresses(self):
        src = "import numpy as np\nx = np.random.rand(3)  # noqa: ADR301 -- test fixture\n"
        assert codes(src) == set()

    def test_noqa_other_code_does_not_suppress(self):
        src = "import numpy as np\nx = np.random.rand(3)  # noqa: ADR302\n"
        assert codes(src) == {"ADR301"}

    def test_noqa_suppresses_only_the_named_code(self):
        """A line with two co-located findings keeps the unnamed one."""
        src = self.TWO.format(noqa="  # noqa: ADR301")
        assert codes(src) == {"ADR303"}
        src = self.TWO.format(noqa="  # noqa: ADR303")
        assert codes(src) == {"ADR301"}

    def test_noqa_code_list_suppresses_all_named(self):
        src = self.TWO.format(noqa="  # noqa: ADR301, ADR303")
        assert codes(src) == set()
        src = self.TWO.format(noqa="  # noqa: ADR303 ADR301 -- oracle fixture")
        assert codes(src) == set()

    def test_noqa_mixed_tool_list(self):
        """Foreign codes in the list (other linters share the noqa
        convention) neither block nor widen the ADR suppression."""
        src = self.TWO.format(noqa="  # noqa: E402, ADR301")
        assert codes(src) == {"ADR303"}

    def test_rationale_text_does_not_widen_suppression(self):
        src = self.TWO.format(noqa="  # noqa: ADR301 -- ADR303 is deliberate here?")
        assert codes(src) == {"ADR303"}

    def test_bare_noqa_suppresses_nothing(self):
        """Blanket suppression is banned: every opt-out names codes."""
        src = self.TWO.format(noqa="  # noqa")
        assert codes(src) == {"ADR301", "ADR303"}


class TestAggregateLoop:
    LOOP = """\
        for s, e in zip(starts, ends):
            spec.aggregate(acc, cells[s:e], values[s:e])
    """

    def test_flagged_in_hot_path(self):
        out = findings(self.LOOP, runtime_hot_path=True)
        assert [d.code for d in out] == ["ADR305"]
        assert out[0].severity == Severity.ERROR

    def test_not_flagged_outside_hot_path(self):
        assert codes(self.LOOP) == set()

    def test_while_and_bare_name_variants(self):
        src = """\
            while k < n:
                aggregate(k, cells, values)
                k += 1
        """
        assert codes(src, runtime_hot_path=True) == {"ADR305"}

    def test_grouped_call_in_loop_ok(self):
        src = """\
            for k in range(len(seg_out)):
                acc_sets[q].aggregate_grouped(o, flat, values)
        """
        assert codes(src, runtime_hot_path=True) == set()

    def test_nested_loop_flagged_once_on_inner(self):
        src = """\
            for tile in tiles:
                for s, e in zip(starts, ends):
                    spec.aggregate(acc, cells[s:e], values[s:e])
        """
        out = findings(src, runtime_hot_path=True)
        assert [d.code for d in out] == ["ADR305"]
        assert ":2:" in out[0].location  # the inner loop, not the outer

    def test_noqa_opt_out(self):
        src = """\
            for s, e in zip(starts, ends):  # noqa: ADR305 -- reference oracle
                spec.aggregate(acc, cells[s:e], values[s:e])
        """
        assert codes(src, runtime_hot_path=True) == set()

    def test_hot_path_resolved_from_file_location(self, tmp_path, capsys):
        """Only files under repro/runtime/ get the rule."""
        src = textwrap.dedent(self.LOOP)
        hot = tmp_path / "src" / "repro" / "runtime"
        hot.mkdir(parents=True)
        (hot / "mod.py").write_text(src)
        cold = tmp_path / "src" / "repro" / "planner"
        cold.mkdir(parents=True)
        (cold / "mod.py").write_text(src)
        assert main([str(cold)]) == 0
        capsys.readouterr()
        assert main([str(hot)]) == 1
        assert "ADR305" in capsys.readouterr().out


class TestExceptionHygiene:
    """ADR401: no bare except anywhere; no silently swallowed
    exceptions in the fault-critical paths (runtime/store)."""

    SWALLOW = """
    try:
        f()
    except OSError:
        pass
    """

    def test_bare_except_flagged_everywhere(self):
        src = """
        try:
            f()
        except:
            handle()
        """
        assert codes(src) == {"ADR401"}
        assert codes(src, fault_critical=True) == {"ADR401"}

    def test_swallow_flagged_only_in_fault_critical_code(self):
        assert codes(self.SWALLOW) == set()
        assert codes(self.SWALLOW, fault_critical=True) == {"ADR401"}

    def test_continue_and_ellipsis_bodies_flagged(self):
        src = """
        for x in xs:
            try:
                f(x)
            except ValueError:
                continue
        """
        assert codes(src, fault_critical=True) == {"ADR401"}
        src = """
        try:
            f()
        except ValueError:
            ...
        """
        assert codes(src, fault_critical=True) == {"ADR401"}

    def test_recording_handler_ok(self):
        src = """
        try:
            f()
        except OSError as e:
            errors[cid] = str(e)
        """
        assert codes(src, fault_critical=True) == set()

    def test_reraise_ok(self):
        src = """
        try:
            f()
        except OSError:
            raise
        """
        assert codes(src, fault_critical=True) == set()

    def test_noqa_opt_out(self):
        src = """
        try:
            f()
        except OSError:  # noqa: ADR401 -- probing an optional capability
            pass
        """
        assert codes(src, fault_critical=True) == set()

    def test_fault_critical_resolved_from_file_location(self, tmp_path):
        """lint_file applies the stricter half under repro/runtime/,
        repro/store/, repro/frontend/ and repro/faults/ -- everywhere
        an error can reach the fault-tolerant execution path."""
        import textwrap as tw

        from repro.analysis.lint import lint_file

        src = tw.dedent(self.SWALLOW)
        for part in ("store", "runtime", "frontend", "faults"):
            critical = tmp_path / "repro" / part / "mod.py"
            critical.parent.mkdir(parents=True)
            critical.write_text(src)
            assert {d.code for d in lint_file(critical)} == {"ADR401"}, part
        elsewhere = tmp_path / "repro" / "planner" / "mod.py"
        elsewhere.parent.mkdir(parents=True)
        elsewhere.write_text(src)
        assert {d.code for d in lint_file(elsewhere)} == set()


class TestPhaseLoopOwnership:
    """ADR501: phase-sequencing accumulator calls belong to
    runtime/phases.py; other runtime modules drive PhaseExecutor."""

    CALLS = """
    def reduce(spec, acc, idx, vals):
        spec.aggregate_grouped(acc, idx, vals)
    """

    def test_sequencing_call_flagged_in_phase_scope(self):
        assert codes(self.CALLS, phase_scope=True) == {"ADR501"}
        for name in ("allocate", "scatter_groups", "combine_from",
                     "initialize_into", "initialize_from", "prereduce_groups"):
            assert codes(f"x = accs.{name}(a, b)\n", phase_scope=True) == {"ADR501"}

    def test_not_flagged_outside_phase_scope(self):
        assert codes(self.CALLS) == set()

    def test_plain_function_call_ok(self):
        # Only attribute calls sequence phases; a bare helper of the
        # same name (e.g. a test fixture factory) is fine.
        assert codes("x = allocate(5)\n", phase_scope=True) == set()

    def test_noqa_opt_out(self):
        src = """
        spec.scatter_groups(acc, idx, vals)  # noqa: ADR501 -- reference oracle
        """
        assert codes(src, phase_scope=True) == set()

    def test_phase_scope_resolved_from_file_location(self, tmp_path):
        """Every runtime module except phases.py gets the rule."""
        from repro.analysis.lint import lint_file

        src = textwrap.dedent(self.CALLS)
        runtime = tmp_path / "repro" / "runtime"
        runtime.mkdir(parents=True)
        (runtime / "mod.py").write_text(src)
        (runtime / "phases.py").write_text(src)
        elsewhere = tmp_path / "repro" / "aggregation"
        elsewhere.mkdir(parents=True)
        (elsewhere / "mod.py").write_text(src)
        assert {d.code for d in lint_file(runtime / "mod.py")} == {"ADR501"}
        assert {d.code for d in lint_file(runtime / "phases.py")} == set()
        assert {d.code for d in lint_file(elsewhere / "mod.py")} == set()


class TestStrategyLiteralMonopoly:
    """ADR502: strategy names are spelled in repro/planner/ only;
    everyone else imports them from repro.planner.select."""

    def test_literal_flagged_in_strategy_scope(self):
        for name in ("FRA", "SRA", "DA", "HYBRID", "AUTO"):
            assert codes(f's = "{name}"\n', strategy_scope=True) == {"ADR502"}

    def test_not_flagged_outside_strategy_scope(self):
        assert codes('s = "FRA"\n') == set()

    def test_other_strings_untouched(self):
        assert codes('s = "fra"\ns2 = "FRAME"\n', strategy_scope=True) == set()

    def test_docstrings_exempt(self):
        src = '''
        def plan():
            """Plans FRA or DA depending on the cost model."""
            return None
        '''
        assert codes(src, strategy_scope=True) == set()

    def test_noqa_opt_out(self):
        src = 's = "FRA"  # noqa: ADR502 -- wire-format fixture\n'
        assert codes(src, strategy_scope=True) == set()

    def test_scope_resolved_from_file_location(self, tmp_path):
        """Every repro/ module except repro/planner/ gets the rule."""
        from repro.analysis.lint import lint_file

        src = 'DEFAULT = "SRA"\n'
        frontend = tmp_path / "repro" / "frontend"
        frontend.mkdir(parents=True)
        (frontend / "mod.py").write_text(src)
        planner = tmp_path / "repro" / "planner"
        planner.mkdir(parents=True)
        (planner / "select.py").write_text(src)
        outside = tmp_path / "scripts"
        outside.mkdir(parents=True)
        (outside / "mod.py").write_text(src)
        assert {d.code for d in lint_file(frontend / "mod.py")} == {"ADR502"}
        assert {d.code for d in lint_file(planner / "select.py")} == set()
        assert {d.code for d in lint_file(outside / "mod.py")} == set()


class TestTree:
    def test_src_tree_is_clean(self):
        root = Path(__file__).resolve().parents[2]
        assert (root / "src" / "repro").is_dir()
        out = lint_paths([str(root / "src")])
        assert out == [], "\n".join(d.format() for d in out)

    def test_tests_and_benchmarks_are_clean(self):
        root = Path(__file__).resolve().parents[2]
        out = lint_paths([str(root / "tests"), str(root / "benchmarks")])
        assert out == [], "\n".join(d.format() for d in out)


class TestCli:
    def test_clean_dir_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import numpy as np\nnp.random.seed(1)\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "ADR301" in out and "error" in out

    def test_syntax_error_reported(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        assert main([str(tmp_path)]) == 1

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        # a typo'd path in CI must not pass as vacuously clean
        assert main([str(tmp_path / "no_such_dir")]) == 1
        assert "ADR300" in capsys.readouterr().out

    def test_findings_are_sorted(self, tmp_path):
        from repro.analysis.lint import lint_paths

        (tmp_path / "b.py").write_text("import numpy as np\nnp.random.seed(1)\n")
        (tmp_path / "a.py").write_text(
            "import numpy as np\nx = 1\nnp.random.seed(1)\nnp.random.seed(2)\n"
        )
        out = lint_paths([str(tmp_path)])
        assert [d.sort_key() for d in out] == sorted(d.sort_key() for d in out)
        assert [Path(d.location.split(":")[0]).name for d in out] == [
            "a.py", "a.py", "b.py",
        ]


class TestCliFormats:
    BAD = "import numpy as np\nnp.random.seed(1)\n"

    def test_json_report(self, tmp_path, capsys):
        import json

        (tmp_path / "bad.py").write_text(self.BAD)
        assert main([str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.analysis.lint"
        assert doc["summary"]["findings"] == 1 == doc["summary"]["errors"]
        (finding,) = doc["findings"]
        assert finding["code"] == "ADR301"
        assert finding["severity"] == "error"
        assert finding["line"] == 2

    def test_github_annotations(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(self.BAD)
        assert main([str(tmp_path), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "title=ADR301" in out and ",line=2," in out

    def test_out_writes_report_file(self, tmp_path, capsys):
        import json

        (tmp_path / "bad.py").write_text(self.BAD)
        report = tmp_path / "reports" / "lint.json"
        assert main(
            [str(tmp_path / "bad.py"), "--format", "json", "--out", str(report)]
        ) == 1
        doc = json.loads(report.read_text())
        assert doc["summary"]["findings"] == 1
        # stdout keeps only the human summary line, not the report
        assert "ADR301" not in capsys.readouterr().out.replace(str(report), "")

    def test_unknown_format_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path), "--format", "yaml"]) == 2
        assert "usage" in capsys.readouterr().err.lower()


class TestWireTimeouts:
    """ADR402: no socket in a wire path without an explicit timeout."""

    NAKED_SOCKET = """
    import socket

    def serve():
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        return listener
    """

    TIMED_SOCKET = """
    import socket

    def serve():
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.settimeout(0.2)
        listener.bind(("127.0.0.1", 0))
        return listener
    """

    def test_socket_without_settimeout_flagged(self):
        assert codes(self.NAKED_SOCKET, wire_scope=True) == {"ADR402"}

    def test_socket_with_settimeout_clean(self):
        assert codes(self.TIMED_SOCKET, wire_scope=True) == set()

    def test_not_flagged_outside_wire_scope(self):
        assert codes(self.NAKED_SOCKET) == set()

    def test_create_connection_without_timeout_flagged(self):
        src = """
        import socket

        def dial(address):
            return socket.create_connection(address)
        """
        assert codes(src, wire_scope=True) == {"ADR402"}

    def test_create_connection_with_timeout_clean(self):
        for call in (
            "socket.create_connection(address, timeout=5.0)",
            "socket.create_connection(address, 5.0)",
        ):
            src = f"""
            import socket

            def dial(address):
                return {call}
            """
            assert codes(src, wire_scope=True) == set()

    def test_settimeout_none_flagged(self):
        src = """
        def forever(sock):
            sock.settimeout(None)
            return sock.recv(4)
        """
        assert codes(src, wire_scope=True) == {"ADR402"}

    def test_noqa_opt_out(self):
        src = """
        import socket

        def serve():
            listener = socket.socket()  # noqa: ADR402 -- closed by owner
            return listener
        """
        assert codes(src, wire_scope=True) == set()

    def test_wire_scope_resolved_from_file_location(self, tmp_path):
        import textwrap

        for part in ("frontend", "shard", "faults"):
            wire = tmp_path / "repro" / part / "mod.py"
            wire.parent.mkdir(parents=True, exist_ok=True)
            wire.write_text(textwrap.dedent(self.NAKED_SOCKET))
            assert {d.code for d in lint_paths([str(wire)])} == {"ADR402"}
        elsewhere = tmp_path / "repro" / "planner" / "mod.py"
        elsewhere.parent.mkdir(parents=True, exist_ok=True)
        elsewhere.write_text(textwrap.dedent(self.NAKED_SOCKET))
        assert {d.code for d in lint_paths([str(elsewhere)])} == set()
