"""Property test: every plan the strategies produce verifies clean.

The paper's equivalence claim (FRA == SRA == DA) presumes each plan
upholds its strategy's contract; here hypothesis searches the space of
random planning problems for a counterexample.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import verify_plan
from repro.planner.strategies import plan_da, plan_fra, plan_sra

from helpers import make_problem


@given(
    seed=st.integers(0, 2**31),
    n_procs=st.integers(1, 8),
    n_in=st.integers(5, 80),
    n_out=st.integers(1, 24),
    mem_kb=st.sampled_from([64, 256, 1024, 16 * 1024]),
    fan_out=st.integers(1, 4),
    acc_factor=st.sampled_from([0.5, 1.0, 2.0, 8.0]),
)
@settings(max_examples=40, deadline=None)
def test_planned_strategies_have_zero_diagnostics(
    seed, n_procs, n_in, n_out, mem_kb, fan_out, acc_factor
):
    rng = np.random.default_rng(seed)
    problem = make_problem(
        rng,
        n_procs=n_procs,
        n_in=n_in,
        n_out=n_out,
        memory=mem_kb * 1024,
        fan_out=fan_out,
        acc_factor=acc_factor,
    )
    for planner in (plan_fra, plan_sra, plan_da):
        plan = planner(problem)
        diagnostics = verify_plan(plan)
        assert diagnostics == [], (
            f"{plan.strategy} produced diagnostics on seed {seed}: "
            + "; ".join(d.format() for d in diagnostics)
        )


@given(seed=st.integers(0, 2**31), n_procs=st.integers(2, 6))
@settings(max_examples=10, deadline=None)
def test_hybrid_passes_structural_checks(seed, n_procs):
    from repro.planner.hybrid import plan_hybrid

    rng = np.random.default_rng(seed)
    problem = make_problem(rng, n_procs=n_procs, n_in=30, n_out=10, memory=512 * 1024)
    plan = plan_hybrid(problem)
    # Hybrid owes no Figure 4-6 placement contract, but must be
    # structurally executable.
    structural = [d for d in verify_plan(plan, strategy_contracts=False)]
    assert structural == [], "; ".join(d.format() for d in structural)
