"""Tests for the ADR7xx dataflow/concurrency lint.

Each rule gets a firing snippet (seeded mutation of the real pattern
it guards) and a clean counterpart proving the guard does not
overreach.  The snippets run through :func:`lint_source` with the
concurrency scopes enabled, so noqa handling and diagnostic plumbing
are exercised too.
"""

import textwrap
from pathlib import Path

from repro.analysis import Severity, lint_source
from repro.analysis.effects import check_effects
from repro.analysis.lint import lint_file


def findings(src, path="repro/runtime/mod.py", **kwargs):
    kwargs.setdefault("concurrency_scope", True)
    return lint_source(textwrap.dedent(src), path, **kwargs)


def codes(src, **kwargs):
    return {d.code for d in findings(src, **kwargs)}


class TestThreadWorkerWrites:
    """ADR701: thread-worker functions mutate shared state under a
    lock or not at all."""

    UNGUARDED = """
    import threading

    class Prefetcher:
        def start(self):
            self._th = threading.Thread(target=self._work, daemon=True)
            self._th.start()

        def _work(self):
            self.results[0] = fetch()
    """

    GUARDED = """
    import threading

    class Prefetcher:
        def start(self):
            self._th = threading.Thread(target=self._work, daemon=True)
            self._th.start()

        def _work(self):
            with self._cv:
                self.results[0] = fetch()
    """

    def test_unguarded_write_flagged(self):
        out = findings(self.UNGUARDED)
        assert [d.code for d in out] == ["ADR701"]
        assert out[0].severity == Severity.ERROR
        assert "self.results" in out[0].message

    def test_write_under_lock_ok(self):
        assert codes(self.GUARDED) == set()

    def test_mutating_method_call_flagged(self):
        src = self.UNGUARDED.replace(
            "self.results[0] = fetch()", "self.results.append(fetch())"
        )
        assert codes(src) == {"ADR701"}

    def test_non_worker_method_not_flagged(self):
        src = """
        import threading

        class Prefetcher:
            def start(self):
                self._th = threading.Thread(target=self._work, daemon=True)

            def _work(self):
                pass

            def reset(self):
                self.results = {}
        """
        assert codes(src) == set()

    def test_process_targets_exempt(self):
        # multiprocessing workers get a copied address space: writes
        # there are not shared-state races.
        src = """
        import multiprocessing as mp

        class Host:
            def start(self):
                self._p = mp.Process(target=self._work)

            def _work(self):
                self.local = compute()
        """
        assert codes(src) == set()

    def test_outside_concurrency_scope_not_flagged(self):
        assert codes(self.UNGUARDED, concurrency_scope=False) == set()


class TestLockOrder:
    """ADR702: one global lock order per module."""

    ABBA = """
    def one(self):
        with self._alock:
            with self._block:
                work()

    def two(self):
        with self._block:
            with self._alock:
                work()
    """

    def test_abba_nesting_flagged(self):
        out = findings(self.ABBA)
        assert [d.code for d in out] == ["ADR702"]
        assert "ABBA" in out[0].message

    def test_consistent_nesting_ok(self):
        src = """
        def one(self):
            with self._alock:
                with self._block:
                    work()

        def two(self):
            with self._alock:
                with self._block:
                    other()
        """
        assert codes(src) == set()

    def test_non_lock_contexts_ignored(self):
        src = """
        def one(self):
            with open(a) as f:
                with open(b) as g:
                    copy(f, g)

        def two(self):
            with open(b) as g:
                with open(a) as f:
                    copy(g, f)
        """
        assert codes(src) == set()


class TestUnboundedWaits:
    """ADR703: every blocking wait in the concurrency-critical paths
    carries a timeout."""

    def test_bare_queue_get_flagged(self):
        assert codes("item = q.get()\n") == {"ADR703"}

    def test_bare_join_flagged(self):
        assert codes("th.join()\n") == {"ADR703"}

    def test_timeout_variants_ok(self):
        assert codes("item = q.get(timeout=5.0)\n") == set()
        assert codes("item = q.get(True, 5.0)\n") == set()
        assert codes("th.join(timeout=deadline - now)\n") == set()

    def test_string_join_ok(self):
        assert codes("s = ', '.join(names)\n") == set()

    def test_dict_get_with_default_ok(self):
        assert codes("v = d.get(key, None)\n") == set()

    def test_outside_concurrency_scope_not_flagged(self):
        assert codes("item = q.get()\n", concurrency_scope=False) == set()

    def test_noqa_opt_out(self):
        src = "item = q.get()  # noqa: ADR703 -- consumer owns the queue\n"
        assert codes(src) == set()


class TestSharedMemoryCleanup:
    """ADR704: SharedMemory bindings need close (+unlink when created)
    on a finally path of the same function."""

    LEAKY = """
    from multiprocessing import shared_memory

    def attach(name):
        shm = shared_memory.SharedMemory(name=name)
        return consume(shm.buf)
    """

    CLEAN = """
    from multiprocessing import shared_memory

    def attach(name):
        shm = shared_memory.SharedMemory(name=name)
        try:
            return consume(shm.buf)
        finally:
            shm.close()
    """

    def test_missing_close_flagged(self):
        out = findings(self.LEAKY)
        assert [d.code for d in out] == ["ADR704"]
        assert "shm.close()" in out[0].message

    def test_close_in_finally_ok(self):
        assert codes(self.CLEAN) == set()

    def test_created_segment_also_needs_unlink(self):
        src = self.CLEAN.replace(
            "SharedMemory(name=name)", "SharedMemory(create=True, size=n)"
        )
        out = findings(src)
        assert [d.code for d in out] == ["ADR704"]
        assert "shm.unlink()" in out[0].message

    def test_created_segment_with_both_ok(self):
        src = """
        from multiprocessing import shared_memory

        def serve(n):
            shm = shared_memory.SharedMemory(create=True, size=n)
            try:
                fill(shm.buf)
            finally:
                shm.close()
                shm.unlink()
        """
        assert codes(src) == set()

    def test_nested_function_scopes_are_separate(self):
        # A finally in an inner function must not satisfy an outer
        # binding (and vice versa).
        src = """
        from multiprocessing import shared_memory

        def outer(name):
            shm = shared_memory.SharedMemory(name=name)

            def inner(other):
                shm2 = shared_memory.SharedMemory(name=other)
                try:
                    return consume(shm2.buf)
                finally:
                    shm2.close()

            return inner
        """
        out = findings(src)
        assert [d.code for d in out] == ["ADR704"]
        assert "'shm'" in out[0].message


class TestGuardedCache:
    """ADR705: the guarded-cache module mutates only under the lock
    or in *_locked helpers."""

    def fcodes(self, src):
        return codes(src, path="repro/store/cache.py", guarded_cache=True)

    def test_unlocked_mutation_flagged(self):
        src = """
        class Cache:
            def drop(self, key):
                self._entries.pop(key)
        """
        assert self.fcodes(src) == {"ADR705"}

    def test_mutation_under_lock_ok(self):
        src = """
        class Cache:
            def drop(self, key):
                with self._lock:
                    self._entries.pop(key)
        """
        assert self.fcodes(src) == set()

    def test_locked_helper_ok(self):
        src = """
        class Cache:
            def _insert_locked(self, key, chunk):
                self._entries[key] = chunk
                self._bytes += 64
        """
        assert self.fcodes(src) == set()

    def test_init_exempt(self):
        src = """
        class Cache:
            def __init__(self):
                self._entries = {}
                self._bytes = 0
        """
        assert self.fcodes(src) == set()

    def test_counter_augassign_flagged(self):
        src = """
        class Cache:
            def hit(self):
                self.hits += 1
        """
        assert self.fcodes(src) == {"ADR705"}

    def test_not_enforced_outside_cache_module(self):
        src = """
        class Other:
            def bump(self):
                self.hits += 1
        """
        assert codes(src) == set()


class TestScopeResolution:
    """lint_file turns file locations into the right rule scopes."""

    UNBOUNDED = "item = q.get()\n"

    def test_concurrency_paths_get_adr7xx(self, tmp_path):
        hot = tmp_path / "repro" / "frontend" / "mod.py"
        hot.parent.mkdir(parents=True)
        hot.write_text(self.UNBOUNDED)
        cold = tmp_path / "repro" / "planner" / "mod.py"
        cold.parent.mkdir(parents=True)
        cold.write_text(self.UNBOUNDED)
        assert {d.code for d in lint_file(hot)} == {"ADR703"}
        assert {d.code for d in lint_file(cold)} == set()

    def test_cache_module_gets_adr705(self, tmp_path):
        src = "class C:\n    def f(self):\n        self.hits += 1\n"
        cache = tmp_path / "repro" / "store" / "cache.py"
        cache.parent.mkdir(parents=True)
        cache.write_text(src)
        other = tmp_path / "repro" / "store" / "other.py"
        other.write_text(src)
        assert {d.code for d in lint_file(cache)} == {"ADR705"}
        assert {d.code for d in lint_file(other)} == set()


class TestCheckEffectsApi:
    def test_syntax_error_returns_nothing(self):
        # the project lint owns ADR300 for unparseable files
        assert check_effects("def f(:\n", "mod.py") == []

    def test_real_cache_module_is_clean(self):
        root = Path(__file__).resolve().parents[2]
        cache = root / "src" / "repro" / "store" / "cache.py"
        assert lint_file(cache) == []
