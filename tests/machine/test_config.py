"""Tests for machine configuration and compute costs."""

import pytest

from repro.machine.config import ComputeCosts, MachineConfig
from repro.machine.presets import IBM_SP_COSTS, ibm_sp
from repro.util.units import MB


class TestMachineConfig:
    def test_basic(self):
        m = MachineConfig(n_procs=8, memory_per_proc=32 * MB)
        assert m.n_disks == 8
        assert m.read_time(10 * MB) == pytest.approx(0.010 + 1.0)
        assert m.send_time(110 * MB) == pytest.approx(1.0)

    def test_scaled_keeps_node_hardware(self):
        m = ibm_sp(8)
        m2 = m.scaled(128)
        assert m2.n_procs == 128
        assert m2.disk_bandwidth == m.disk_bandwidth
        assert m2.memory_per_proc == m.memory_per_proc

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_procs": 0, "memory_per_proc": MB},
            {"n_procs": 1, "memory_per_proc": 0},
            {"n_procs": 1, "memory_per_proc": MB, "disks_per_node": 0},
            {"n_procs": 1, "memory_per_proc": MB, "disk_bandwidth": 0},
            {"n_procs": 1, "memory_per_proc": MB, "link_bandwidth": -1},
            {"n_procs": 1, "memory_per_proc": MB, "disk_seek": -1},
            {"n_procs": 1, "memory_per_proc": MB, "io_jitter": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MachineConfig(**kwargs)

    def test_multi_disk(self):
        m = MachineConfig(n_procs=4, memory_per_proc=MB, disks_per_node=3)
        assert m.n_disks == 12


class TestComputeCosts:
    def test_from_ms(self):
        c = ComputeCosts.from_ms(1, 40, 20, 1)
        assert c.init == pytest.approx(0.001)
        assert c.reduction == pytest.approx(0.040)
        assert c.combine == pytest.approx(0.020)
        assert c.output == pytest.approx(0.001)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ComputeCosts(-1, 0, 0, 0)

    def test_table1_presets(self):
        assert set(IBM_SP_COSTS) == {"SAT", "WCS", "VM"}
        assert IBM_SP_COSTS["SAT"].reduction == pytest.approx(0.040)
        assert IBM_SP_COSTS["WCS"].reduction == pytest.approx(0.020)
        assert IBM_SP_COSTS["VM"].reduction == pytest.approx(0.005)
        assert IBM_SP_COSTS["SAT"].combine == pytest.approx(0.020)

    def test_ibm_sp_preset(self):
        m = ibm_sp(128)
        assert m.n_procs == 128
        assert m.link_bandwidth == pytest.approx(110 * MB)
        assert m.disks_per_node == 1
