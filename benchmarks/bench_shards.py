"""Sharded scatter/gather benchmark: machine-count scaling + degrade.

Measures the paper's machine-scaling story (Figures 8/9) on the real
deployment shape: N ``repro.shard.server`` **OS processes** (one per
shard, each owning its Hilbert-assigned chunk shard behind a modelled
per-read disk latency) fronted by a
:class:`~repro.shard.router.ShardRouter` that scatters each query,
gathers raw-accumulator partials over the wire, and finishes the FRA
global combine.  Each query's chunk reads split across shards, so the
read-bound wall time should drop roughly with the machine count --
the same declustered-disk argument the paper makes, one level up.

Two measurements:

- **scaling** -- the query list executed through 1-, 2- and 4-shard
  deployments (fresh processes and cold caches per round); reports
  queries/sec and p50/p99 latency per shard count and the 4-vs-1
  throughput ratio (``--min-ratio`` gates it in CI);
- **degraded** -- the 4-shard deployment with one shard process
  killed: p50/p99 latency and completeness of ``on_error='degrade'``
  queries, showing a dead machine costs bounded retry time, not a
  hung or failed workload.

Before any timing counts, every query's routed result is checked
against the same query on a single-process ADR over the full dataset
(identical output ids and pruning, values to float tolerance --
combine order across shards may differ, nothing else; the 1-shard
deployment must match **bit for bit**, its merge being a pure
re-encode).  Run standalone::

    PYTHONPATH=src python benchmarks/bench_shards.py [--min-ratio 1.5]

writes ``BENCH_shards.json``.  Fidelity follows
``REPRO_BENCH_FIDELITY`` (``fast`` shrinks items, queries and rounds).
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.aggregation.functions import MeanAggregation  # noqa: E402
from repro.aggregation.output_grid import OutputGrid  # noqa: E402
from repro.dataset.partition import hilbert_partition  # noqa: E402
from repro.frontend.adr import ADR  # noqa: E402
from repro.frontend.protocol import ProtocolError  # noqa: E402
from repro.frontend.query import RangeQuery  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.shard.router import (  # noqa: E402
    RouterPolicy,
    ShardEndpoint,
    ShardRouter,
)
from repro.shard.topology import ShardTopology, shard_chunks  # noqa: E402
from repro.space.attribute_space import AttributeSpace  # noqa: E402
from repro.space.mapping import GridMapping  # noqa: E402
from repro.store.retry import RetryPolicy  # noqa: E402
from repro.util.geometry import Rect  # noqa: E402
from repro.util.rng import make_rng  # noqa: E402
from repro.util.units import MB  # noqa: E402

FIDELITY = os.environ.get("REPRO_BENCH_FIDELITY", "fast").lower()
SEED = 20260807

WORKLOADS = {
    # n_items, items_per_chunk, grid_cells, chunk_cells, procs/shard,
    # read latency (s), workload repeats, rounds
    "fast": (3_000, 30, (12, 12), (3, 3), 2, 0.004, 1, 2),
    "full": (9_000, 45, (16, 16), (4, 4), 2, 0.004, 2, 3),
}

SHARD_COUNTS = (1, 2, 4)

#: Read-heavy regions over the (0,0)-(10,10) input space: full scans
#: and large boxes, so every query touches chunks on every shard.
REGION_TEMPLATES = [
    ((0, 0), (10, 10)),
    ((0, 0), (8, 8)),
    ((2, 2), (10, 10)),
    ((0, 0), (10, 6)),
    ((0, 4), (10, 10)),
    ((1, 0), (9, 10)),
    ((0, 1), (10, 9)),
    ((0, 0), (10, 10)),
]


def build_workload():
    (n_items, per_chunk, gcells, ccells, n_procs, delay, repeats,
     rounds) = WORKLOADS["fast" if FIDELITY == "fast" else "full"]
    rng = make_rng(SEED)
    in_space = AttributeSpace.regular("in", ("x", "y"), (0, 0), (10, 10))
    out_space = AttributeSpace.regular("out", ("u", "v"), (0, 0), (1, 1))
    coords = rng.uniform(0, 10, size=(n_items, 2))
    values = rng.integers(1, 100, size=(n_items, 1)).astype(float)
    chunks = hilbert_partition(coords, values, per_chunk)
    grid = OutputGrid(out_space, gcells, ccells)
    mapping = GridMapping(in_space, out_space, gcells)
    queries = [
        RangeQuery("farm", Rect(lo, hi), mapping, grid,
                   aggregation=MeanAggregation(1), strategy="FRA")
        for _ in range(repeats)
        for lo, hi in REGION_TEMPLATES
    ]
    return in_space, chunks, queries, n_procs, delay, rounds


class ShardProcs:
    """N shard-server OS processes, spawned from pickled payloads."""

    def __init__(self, in_space, chunks, n_shards, n_procs, delay, tmpdir):
        self.topology = ShardTopology.build("farm", in_space, chunks, n_shards)
        self.procs = []
        self.endpoints = []
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        for sid in range(n_shards):
            payload = {
                "dataset": "farm",
                "space": in_space,
                "chunks": shard_chunks(chunks, self.topology.assignment, sid),
                "shard_id": sid,
                "n_procs": n_procs,
                "memory_per_proc": MB,
                "read_delay_s": delay,
                # No payload cache: every round pays the modelled disk
                # latency, which is the quantity being scaled.
                "cache_bytes": 0,
            }
            path = Path(tmpdir) / f"shard{sid}.pickle"
            with open(path, "wb") as f:
                pickle.dump(payload, f)
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.shard.server", "--load",
                 str(path)],
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
                env=env, text=True,
            )
            self.procs.append(proc)
            port = None
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    raise RuntimeError(f"shard {sid} exited during startup")
                if line.startswith("PORT "):
                    port = int(line.split()[1])
                if line.strip() == "READY":
                    break
            if port is None:
                raise RuntimeError(f"shard {sid} never reported its port")
            self.endpoints.append(ShardEndpoint(sid, ("127.0.0.1", port)))

    def router(self, policy):
        return ShardRouter(self.topology, self.endpoints, policy=policy)

    def kill(self, sid):
        self.procs[sid].kill()
        self.procs[sid].wait(timeout=30)

    def close(self):
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def make_solo(in_space, chunks, n_procs):
    adr = ADR(machine=MachineConfig(n_procs=n_procs, memory_per_proc=MB))
    adr.load("farm", in_space, chunks)
    return adr


def verify_routed_matches_solo(router, n_shards, queries, solo_results):
    """Correctness gate: routed results match the single-process ADR
    (ids and pruning exactly, values to float tolerance; the 1-shard
    deployment bit for bit -- its merge only re-encodes)."""
    for qi, (query, solo) in enumerate(zip(queries, solo_results)):
        routed = router.execute(query)
        tag = f"shards={n_shards} query {qi}"
        if routed.shard_errors or routed.completeness != 1.0:
            raise AssertionError(f"{tag}: healthy deployment degraded")
        if routed.output_ids.tolist() != solo.output_ids.tolist():
            raise AssertionError(f"{tag}: output ids diverged")
        if routed.chunks_pruned != solo.chunks_pruned:
            raise AssertionError(f"{tag}: pruning diverged")
        for o, rv, sv in zip(routed.output_ids, routed.chunk_values,
                             solo.chunk_values):
            exact = np.array_equal(rv, sv, equal_nan=True)
            if n_shards == 1 and not exact:
                raise AssertionError(
                    f"{tag}: single-shard chunk {int(o)} not bit-identical"
                )
            if not exact and not np.allclose(rv, sv, equal_nan=True):
                raise AssertionError(f"{tag}: chunk {int(o)} diverged")


def drive_round(router, queries):
    latencies = []
    t0 = time.perf_counter()
    for query in queries:
        q0 = time.perf_counter()
        router.execute(query)
        latencies.append(time.perf_counter() - q0)
    return time.perf_counter() - t0, latencies


def summarize(wall, latencies, n_queries):
    lat_ms = np.asarray(latencies) * 1e3
    return {
        "seconds": wall,
        "queries_per_second": n_queries / wall,
        "p50_latency_ms": float(np.percentile(lat_ms, 50)),
        "p99_latency_ms": float(np.percentile(lat_ms, 99)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-ratio", type=float, default=None,
        help="exit 1 unless 4-shard/1-shard throughput meets this factor",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_shards.json"),
        help="output JSON path (default: repo-root BENCH_shards.json)",
    )
    args = parser.parse_args(argv)

    in_space, chunks, queries, n_procs, delay, rounds = build_workload()
    solo_results = [
        make_solo(in_space, chunks, n_procs).execute(q) for q in queries
    ]

    policy = RouterPolicy(
        shard_deadline_s=120.0, connect_timeout_s=10.0,
        retry=RetryPolicy(max_attempts=2, base_delay=0.05,
                          retry_on=(OSError, ProtocolError)),
    )
    report = {
        "bench": "shards",
        "fidelity": "fast" if FIDELITY == "fast" else "full",
        "n_chunks": len(chunks),
        "n_queries": len(queries),
        "read_latency_seconds": delay,
        "rounds": rounds,
        "shard_counts": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_shards_") as tmpdir:
        for n_shards in SHARD_COUNTS:
            best_wall = float("inf")
            all_latencies = []
            for rnd in range(rounds):
                with ShardProcs(in_space, chunks, n_shards, n_procs, delay,
                                tmpdir) as procs:
                    router = procs.router(policy)
                    if rnd == 0:
                        verify_routed_matches_solo(
                            router, n_shards, queries, solo_results
                        )
                    wall, latencies = drive_round(router, queries)
                best_wall = min(best_wall, wall)
                all_latencies.extend(latencies)
            r = summarize(best_wall, all_latencies, len(queries))
            report["shard_counts"][str(n_shards)] = r
            print(
                f"shards={n_shards}: {r['queries_per_second']:.1f} q/s "
                f"(wall {r['seconds']:.3f}s), p50 {r['p50_latency_ms']:.1f} ms, "
                f"p99 {r['p99_latency_ms']:.1f} ms"
            )

        # Degraded mode: the widest deployment with one machine dead.
        n_shards = SHARD_COUNTS[-1]
        degrade_policy = RouterPolicy(
            shard_deadline_s=10.0, connect_timeout_s=2.0,
            retry=RetryPolicy(max_attempts=2, base_delay=0.05,
                              retry_on=(OSError, ProtocolError)),
        )
        degraded_queries = [
            RangeQuery(q.dataset, q.region, q.mapping, q.grid,
                       aggregation=q.aggregation, strategy=q.strategy,
                       on_error="degrade")
            for q in queries
        ]
        with ShardProcs(in_space, chunks, n_shards, n_procs, delay,
                        tmpdir) as procs:
            procs.kill(0)
            router = procs.router(degrade_policy)
            wall, latencies = drive_round(router, degraded_queries)
            results = [router.execute(q) for q in degraded_queries[:1]]
        r = summarize(wall, latencies, len(degraded_queries))
        r["completeness"] = float(results[0].completeness)
        r["dead_shards"] = 1
        report["degraded"] = r
        print(
            f"degraded (1 of {n_shards} shards dead): "
            f"p50 {r['p50_latency_ms']:.1f} ms, "
            f"p99 {r['p99_latency_ms']:.1f} ms, "
            f"completeness {r['completeness']:.3f}"
        )

    ratio = (
        report["shard_counts"][str(SHARD_COUNTS[-1])]["queries_per_second"]
        / report["shard_counts"]["1"]["queries_per_second"]
    )
    report["throughput_ratio_4v1"] = ratio
    print(f"throughput ratio ({SHARD_COUNTS[-1]} shards / 1 shard): "
          f"{ratio:.2f}x")

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.min_ratio is not None and ratio < args.min_ratio:
        print(f"FAIL: throughput ratio {ratio:.2f}x below {args.min_ratio}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
