"""Micro-benchmarks of the library's hot kernels.

Not a paper figure -- these track the cost of the operations everything
else is built from: Hilbert indexing, chunk-graph construction, the
three planners, plan-traffic derivation, and simulator event
throughput.
"""

import numpy as np
import pytest

import repro_grid as grid
from repro.machine.presets import ibm_sp
from repro.planner.strategies import plan_da, plan_fra, plan_sra
from repro.sim.events import Resource, Simulator
from repro.sim.query_sim import simulate_query
from repro.util.geometry import Rect
from repro.util.hilbert import hilbert_indices, hilbert_sort_keys

P = grid.PROCS[0]


@pytest.fixture(scope="module")
def sat_problem():
    return grid.problem("SAT", 1, P)


def test_hilbert_indices_bulk(benchmark):
    rng = np.random.default_rng(0)
    coords = rng.integers(0, 1 << 16, size=(100_000, 2))
    out = benchmark(hilbert_indices, coords, 16)
    assert len(out) == 100_000


def test_hilbert_sort_keys_3d(benchmark):
    rng = np.random.default_rng(0)
    pts = rng.uniform(0, 1, size=(50_000, 3))
    bbox = Rect.cube(0, 1, 3)
    out = benchmark(hilbert_sort_keys, pts, bbox)
    assert len(out) == 50_000


def test_chunk_graph_construction(benchmark):
    emu = grid.emulator("SAT")
    out = benchmark(emu.scenario, 1, 42)
    assert out.graph.n_edges > 0


@pytest.mark.parametrize(
    "planner", [plan_fra, plan_sra, plan_da], ids=["FRA", "SRA", "DA"]
)
def test_planner_speed(benchmark, sat_problem, planner):
    plan = benchmark(planner, sat_problem)
    assert plan.n_tiles >= 1


def test_plan_traffic_derivation(benchmark, sat_problem):
    def run():
        plan = plan_da(sat_problem)
        return plan.reads, plan.input_transfers, plan.ghost_transfers

    reads, it, gt = benchmark(run)
    assert len(reads) > 0


def test_simulator_event_throughput(benchmark):
    """A chain of 10k resource operations: raw DES overhead."""

    def run():
        sim = Simulator()
        r = Resource(sim)
        for _ in range(10_000):
            r.submit(0.001)
        return sim.run()

    total = benchmark(run)
    assert total == pytest.approx(10.0)


def test_full_query_simulation(benchmark):
    sc = grid.scenario("WCS", 1)
    plan = grid.plan("WCS", 1, P, "FRA")
    res = benchmark.pedantic(
        simulate_query, args=(plan, ibm_sp(P), sc.costs), rounds=3, iterations=1
    )
    assert res.total_time > 0
