"""Ablation: global tile barriers vs asynchronous tile progression.

The paper's DA pseudo-code (Figure 6) keeps a *per-processor* tile
counter, while FRA/SRA tiles are global; the execution service
description (Section 2.4) is phase-by-phase.  This bench quantifies
what the synchronization itself costs: the same plans executed with
per-tile phase barriers (the default model) and with fully
asynchronous per-processor progression, where only the data
dependencies (forwarded inputs, ghost receipts) order work.

Expected: barrier cost grows with per-tile load imbalance and tile
count -- largest for FRA on the skewed SAT workload, small for DA
(one tile) and for the regular VM workload.
"""

import pytest

import repro_grid as grid
from repro.machine.presets import ibm_sp
from repro.sim.query_sim import simulate_query

P = grid.PROCS[min(2, len(grid.PROCS) - 1)]  # 32 procs at full fidelity


def test_sync_vs_async_tiles(benchmark):
    print()
    print(f"== Ablation: tile synchronization ({P} processors, fixed input) ==")
    print("app | strategy | barriers | async | barrier overhead")
    overheads = {}
    for app in grid.APPS:
        sc = grid.scenario(app, 1)
        machine = ibm_sp(P)
        for strategy in ("FRA", "DA"):
            plan = grid.plan(app, 1, P, strategy)
            sync = grid.cell(app, "fixed", P, strategy).total_time
            asyn = simulate_query(plan, machine, sc.costs, sync_tiles=False).total_time
            overhead = sync / asyn - 1.0
            overheads[(app, strategy)] = overhead
            print(
                f"{app:3} | {strategy:8} | {sync:7.2f} s | {asyn:6.2f} s "
                f"| {overhead * 100:6.1f}%"
            )
    # Async never loses (same work, strictly fewer ordering constraints).
    assert all(o >= -0.02 for o in overheads.values()), overheads
    # Somewhere the barriers must actually cost something measurable.
    assert max(overheads.values()) > 0.02

    sc = grid.scenario("VM", 1)
    plan = grid.plan("VM", 1, P, "FRA")
    benchmark.pedantic(
        simulate_query,
        args=(plan, ibm_sp(P), sc.costs),
        kwargs={"sync_tiles": False},
        rounds=3,
        iterations=1,
    )
