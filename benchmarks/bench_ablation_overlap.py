"""Ablation: operation overlap on/off.

Section 2.4: "To reduce query execution time, ADR overlaps disk
operations, network operations and processing as much as possible
during query processing [...] Data chunks are therefore retrieved and
processed in a pipelined fashion."  The contrast case is the layered
architecture the related-work section criticizes, where "data
processing usually cannot begin until the entire collective I/O
operation completes".

This bench executes each application under FRA with the pipeline
enabled and disabled and reports the speedup from overlap.
"""

import pytest

import repro_grid as grid
from repro.machine.presets import ibm_sp
from repro.sim.query_sim import simulate_query

P = grid.PROCS[0]


def test_overlap_ablation(benchmark):
    print()
    print(f"== Ablation: I/O-compute overlap ({P} processors, FRA) ==")
    print("app | overlapped | layered (no overlap) | speedup")
    speedups = {}
    for app in grid.APPS:
        sc = grid.scenario(app, 1)
        machine = ibm_sp(P)
        plan = grid.plan(app, 1, P, "FRA")
        on = simulate_query(plan, machine, sc.costs).total_time
        off = simulate_query(plan, machine, sc.costs, overlap=False).total_time
        speedups[app] = off / on
        print(f"{app:3} | {on:9.2f} s | {off:19.2f} s | {off / on:6.2f}x")
    # Overlap must help, most of all for the I/O-heavy VM workload.
    assert all(s >= 1.0 for s in speedups.values())
    assert speedups["VM"] > 1.1
    sc = grid.scenario("VM", 1)
    plan = grid.plan("VM", 1, P, "FRA")
    benchmark.pedantic(
        simulate_query, args=(plan, ibm_sp(P), sc.costs), rounds=3, iterations=1
    )
