"""Benchmark configuration: make repro_grid importable from any bench."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
