"""Ablation: spatial index (R-tree vs grid vs brute-force scan).

Section 2.2 indexes chunk MBRs with an R-tree; this bench quantifies
build and query cost for the three index types on the SAT chunk
population (irregular MBRs) across selectivities, using
pytest-benchmark for the timing.
"""

import numpy as np
import pytest

import repro_grid as grid
from repro.index import BruteForceIndex, GridIndex, RTree
from repro.util.geometry import Rect

INDEXES = {
    "rtree-str": (RTree, {"bulk": "str"}),
    "rtree-hilbert": (RTree, {"bulk": "hilbert"}),
    "grid": (GridIndex, {}),
    "brute": (BruteForceIndex, {}),
}


@pytest.fixture(scope="module")
def population():
    sc = grid.scenario("SAT", 1)
    return sc.inputs


@pytest.fixture(scope="module")
def queries(population):
    rng = np.random.default_rng(3)
    lo, hi = population.bounds.as_arrays()
    span = hi - lo
    out = []
    for frac in (0.05, 0.2, 0.5):
        a = lo + rng.uniform(0, 1 - frac, size=len(lo)) * span
        out.append(Rect(tuple(a), tuple(a + frac * span)))
    return out


@pytest.mark.parametrize("name", list(INDEXES))
def test_index_build(benchmark, population, name):
    cls, kwargs = INDEXES[name]
    idx = benchmark(cls.build, population, **kwargs)
    assert idx.n_entries == len(population)


@pytest.mark.parametrize("name", list(INDEXES))
def test_index_query(benchmark, population, queries, name):
    cls, kwargs = INDEXES[name]
    idx = cls.build(population, **kwargs)
    brute = BruteForceIndex.build(population)
    # correctness first, then timing
    for q in queries:
        assert idx.query(q).tolist() == brute.query(q).tolist()

    def run():
        return [len(idx.query(q)) for q in queries]

    counts = benchmark(run)
    assert all(c > 0 for c in counts)
