"""Ablation: spatial index (R-tree vs grid vs vectorized scan vs bitmap).

Section 2.2 indexes chunk MBRs with an R-tree.  Two measurements live
here:

- **pytest-benchmark micro-ablation** (the original bench): build and
  query cost for every index type on the SAT chunk population
  (irregular MBRs) across selectivities.  Run with
  ``pytest benchmarks/bench_ablation_index.py``.
- **standalone scaling sweep + pruning workload**: chunk-MBR
  populations up to a million rectangles, reporting build time and
  query throughput per index with the crossover population where each
  vectorized index overtakes the pointer-walking R-tree, plus an
  end-to-end value-synopsis pruning run measuring the byte reduction a
  selective ``where=`` predicate delivers.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_ablation_index.py \\
        [--min-query-ratio 1.0] [--min-prune-ratio 2.0]

writes ``BENCH_index.json``.  Fidelity follows ``REPRO_BENCH_FIDELITY``
(``fast`` caps the sweep at 250k rects; ``full`` runs the 1M
population the committed report documents).  Every timed index is
first checked against the brute-force oracle on the benchmark queries,
and the pruned execution is checked bit-identical to the unpruned one
-- the numbers are only reported for answers that are provably right.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.index import (  # noqa: E402
    BruteForceIndex,
    GridIndex,
    HierarchicalBitmapIndex,
    RTree,
    ScanIndex,
)
from repro.util.geometry import Rect  # noqa: E402

FIDELITY = os.environ.get("REPRO_BENCH_FIDELITY", "fast").lower()
SEED = 20260807
ROUNDS = 3
N_QUERIES = 24

#: rect populations for the scaling sweep; "full" reaches the
#: million-chunk regime the tentpole targets
POPULATIONS = {
    "fast": (10_000, 100_000, 250_000),
    "full": (10_000, 100_000, 1_000_000),
}

#: contenders in the sweep -- GridIndex is excluded above the micro
#: bench because its build loop is per-rect Python (one-time cost, but
#: minutes at 1M rects)
SWEEP_INDEXES = {
    "rtree": (RTree, {"bulk": "hilbert"}),
    "scan": (ScanIndex, {}),
    "bitmap": (HierarchicalBitmapIndex, {}),
    "brute": (BruteForceIndex, {}),
}

#: the vectorized newcomers gated against the R-tree
NEW_INDEXES = ("scan", "bitmap")
GATE_MIN_POPULATION = 100_000


# ---------------------------------------------------------------------------
# pytest-benchmark micro-ablation (original bench; optional at import
# time so the standalone path works where pytest is not installed)
# ---------------------------------------------------------------------------

try:  # pragma: no cover - exercised only under pytest-benchmark
    import pytest

    import repro_grid as grid

    INDEXES = {
        "rtree-str": (RTree, {"bulk": "str"}),
        "rtree-hilbert": (RTree, {"bulk": "hilbert"}),
        "grid": (GridIndex, {}),
        "scan": (ScanIndex, {}),
        "bitmap": (HierarchicalBitmapIndex, {}),
        "brute": (BruteForceIndex, {}),
    }

    @pytest.fixture(scope="module")
    def population():
        sc = grid.scenario("SAT", 1)
        return sc.inputs

    @pytest.fixture(scope="module")
    def queries(population):
        rng = np.random.default_rng(3)
        lo, hi = population.bounds.as_arrays()
        span = hi - lo
        out = []
        for frac in (0.05, 0.2, 0.5):
            a = lo + rng.uniform(0, 1 - frac, size=len(lo)) * span
            out.append(Rect(tuple(a), tuple(a + frac * span)))
        return out

    @pytest.mark.parametrize("name", list(INDEXES))
    def test_index_build(benchmark, population, name):
        cls, kwargs = INDEXES[name]
        idx = benchmark(cls.build, population, **kwargs)
        assert idx.n_entries == len(population)

    @pytest.mark.parametrize("name", list(INDEXES))
    def test_index_query(benchmark, population, queries, name):
        cls, kwargs = INDEXES[name]
        idx = cls.build(population, **kwargs)
        brute = BruteForceIndex.build(population)
        # correctness first, then timing
        for q in queries:
            assert idx.query(q).tolist() == brute.query(q).tolist()

        def run():
            return [len(idx.query(q)) for q in queries]

        counts = benchmark(run)
        assert all(c > 0 for c in counts)

except ImportError:  # pytest absent: standalone main() below still works
    pass


# ---------------------------------------------------------------------------
# standalone scaling sweep
# ---------------------------------------------------------------------------


def make_rects(rng, n, ndim=2, extent=1000.0):
    los = rng.uniform(0.0, extent, size=(n, ndim))
    sizes = rng.uniform(0.0, extent * 0.005, size=(n, ndim))
    return los, los + sizes


def make_queries(rng, ndim=2, extent=1000.0):
    """Query rects across selectivities, all inside the domain."""
    out = []
    for frac in (0.01, 0.05, 0.2):
        side = extent * frac
        for _ in range(N_QUERIES // 3):
            lo = rng.uniform(0.0, extent - side, size=ndim)
            out.append(Rect(tuple(lo), tuple(lo + side)))
    return out


def time_queries(idx, queries, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for q in queries:
            idx.query(q)
        best = min(best, time.perf_counter() - t0)
    return best


def sweep_population(n):
    rng = np.random.default_rng(SEED)
    los, his = make_rects(rng, n)
    queries = make_queries(rng)

    entry = {"build_seconds": {}, "queries_per_sec": {}, "ratio_vs_rtree": {}}
    indexes = {}
    for name, (cls, kwargs) in SWEEP_INDEXES.items():
        t0 = time.perf_counter()
        indexes[name] = cls.from_rects(los, his, **kwargs)
        entry["build_seconds"][name] = time.perf_counter() - t0

    # Correctness gate: every contender answers like the oracle.
    brute = indexes["brute"]
    for q in queries:
        expect = brute.query(q)
        for name, idx in indexes.items():
            got = idx.query(q)
            if not np.array_equal(got, expect):
                raise AssertionError(
                    f"{name} disagreed with brute force at n={n} on {q}"
                )

    for name, idx in indexes.items():
        entry["queries_per_sec"][name] = len(queries) / time_queries(idx, queries)
    rtree_qps = entry["queries_per_sec"]["rtree"]
    for name in SWEEP_INDEXES:
        entry["ratio_vs_rtree"][name] = entry["queries_per_sec"][name] / rtree_qps
    return entry


def crossover(populations):
    """Smallest population where each new index overtakes the R-tree."""
    out = {}
    for name in NEW_INDEXES:
        out[name] = next(
            (
                n
                for n in sorted(int(k) for k in populations)
                if populations[str(n)]["ratio_vs_rtree"][name] >= 1.0
            ),
            None,
        )
    return out


# ---------------------------------------------------------------------------
# end-to-end pruning workload
# ---------------------------------------------------------------------------


def bench_pruning():
    """Execute a selective ``where=`` query with and without the value
    synopsis; the byte reduction is what pruning alone buys, with the
    results checked bit-identical."""
    from repro.aggregation.output_grid import OutputGrid
    from repro.dataset.partition import hilbert_partition
    from repro.frontend.adr import ADR
    from repro.frontend.query import RangeQuery
    from repro.machine.config import MachineConfig
    from repro.space.attribute_space import AttributeSpace
    from repro.space.mapping import GridMapping
    from repro.util.units import MB

    n_items = 20_000 if FIDELITY == "fast" else 80_000
    rng = np.random.default_rng(SEED + 1)
    adr = ADR(machine=MachineConfig(n_procs=4, memory_per_proc=1 * MB))
    in_space = AttributeSpace.regular("readings", ("x", "y"), (0, 0), (10, 10))
    out_space = AttributeSpace.regular("image", ("u", "v"), (0, 0), (1, 1))
    coords = rng.uniform(0, 10, size=(n_items, 2))
    # Values track x so the Hilbert-local chunks carry narrow synopses
    # and the predicate below keeps only the low-x third of the domain.
    values = coords[:, 0] * 10.0 + rng.uniform(0.0, 5.0, size=n_items)
    chunks = hilbert_partition(coords, values, items_per_chunk=200)
    adr.load("sensors", in_space, chunks)
    grid_ = OutputGrid(out_space, (16, 16), (4, 4))
    mapping = GridMapping(in_space, out_space, (16, 16))

    def q():
        return RangeQuery(
            dataset="sensors",
            region=Rect((0, 0), (10, 10)),
            mapping=mapping,
            grid=grid_,
            aggregation="sum",
            strategy="FRA",
            where={0: (None, 30.0)},
        )

    pruned = adr.execute(q())
    ds = adr.dataset("sensors")
    ds.chunks = ds.chunks.with_synopsis(None)
    unpruned = adr.execute(q())

    assert pruned.output_ids.tolist() == unpruned.output_ids.tolist()
    for a, b in zip(pruned.chunk_values, unpruned.chunk_values):
        np.testing.assert_array_equal(a, b, err_msg="pruned run diverged")

    return {
        "n_chunks": len(chunks),
        "chunks_pruned": pruned.chunks_pruned,
        "bytes_pruned": pruned.bytes_pruned,
        "bytes_read_unpruned": unpruned.bytes_read,
        "bytes_read_pruned": pruned.bytes_read,
        "reads_unpruned": unpruned.n_reads,
        "reads_pruned": pruned.n_reads,
        "byte_reduction": unpruned.bytes_read / pruned.bytes_read,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-query-ratio", type=float, default=None,
        help="exit 1 unless scan and bitmap reach this fraction of the "
        f"R-tree's query throughput at populations >= {GATE_MIN_POPULATION}",
    )
    parser.add_argument(
        "--min-prune-ratio", type=float, default=None,
        help="exit 1 unless synopsis pruning cuts bytes read by this factor",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_index.json"),
        help="output JSON path (default: repo-root BENCH_index.json)",
    )
    args = parser.parse_args(argv)

    fidelity = "fast" if FIDELITY == "fast" else "full"
    report = {
        "bench": "index",
        "fidelity": fidelity,
        "n_queries": N_QUERIES,
        "rounds": ROUNDS,
        "populations": {},
    }
    for n in POPULATIONS[fidelity]:
        entry = sweep_population(n)
        report["populations"][str(n)] = entry
        qps = entry["queries_per_sec"]
        print(
            f"n={n:>9,}: "
            + ", ".join(f"{k} {v:,.0f} q/s" for k, v in qps.items())
            + f"  (scan {entry['ratio_vs_rtree']['scan']:.1f}x, "
            f"bitmap {entry['ratio_vs_rtree']['bitmap']:.1f}x vs rtree)"
        )
    report["crossover_vs_rtree"] = crossover(report["populations"])
    print(f"crossover populations: {report['crossover_vs_rtree']}")

    report["pruning"] = bench_pruning()
    p = report["pruning"]
    print(
        f"pruning: {p['chunks_pruned']}/{p['n_chunks']} chunks pruned, "
        f"bytes read {p['bytes_read_unpruned']:,} -> {p['bytes_read_pruned']:,} "
        f"({p['byte_reduction']:.1f}x reduction)"
    )

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    failures = []
    if args.min_query_ratio is not None:
        for n_str, entry in report["populations"].items():
            if int(n_str) < GATE_MIN_POPULATION:
                continue
            for name in NEW_INDEXES:
                ratio = entry["ratio_vs_rtree"][name]
                if ratio < args.min_query_ratio:
                    failures.append(
                        f"{name} at n={n_str}: {ratio:.2f}x vs rtree "
                        f"(need {args.min_query_ratio}x)"
                    )
    if args.min_prune_ratio is not None:
        if p["byte_reduction"] < args.min_prune_ratio:
            failures.append(
                f"pruning byte reduction {p['byte_reduction']:.2f}x "
                f"(need {args.min_prune_ratio}x)"
            )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
