"""Shared experiment grid for the reproduction benches.

Thin adapter over :class:`repro.experiments.ExperimentGrid` (the same
grid the ``python -m repro.experiments`` CLI prints), so a pytest
session computes each grid cell once and every Figure-8/9 bench reuses
it.

Fidelity is controlled by ``REPRO_BENCH_FIDELITY``:

- ``full`` (default): the paper's populations (SAT 9K..144K chunks),
  processors 8..128 -- a few minutes of CPU for the whole grid;
- ``fast``: populations divided by 6, processors 8..32.
"""

from __future__ import annotations

import os

from repro.experiments.grid import METRICS, STRATEGIES, ExperimentGrid

FIDELITY = os.environ.get("REPRO_BENCH_FIDELITY", "full").lower()
FAST = FIDELITY == "fast"
SEED = 20260707

_GRID = ExperimentGrid(fidelity="fast" if FAST else "full", seed=SEED)

PROCS = _GRID.procs
APPS = ("SAT", "WCS", "VM")

# The bench modules use these as functions; keep their lru-cache
# `.__wrapped__` attribute available for benchmarking the uncached path.
emulator = _GRID.emulator
scenario = _GRID.scenario
problem = _GRID.problem
plan = _GRID.plan
cell = _GRID.cell
cell_stats = _GRID.cell_stats
calibrated_model = _GRID.calibrated_model
series = _GRID.series


def print_table(title: str, app: str, scaling: str, metric, unit: str) -> None:
    print()
    # match the metric callable back to a named metric for the shared
    # table renderer; fall back to inline formatting otherwise
    for name, (fn, u) in METRICS.items():
        if u == unit:
            print(_GRID.table(title, app, scaling, name))
            return
    data = series(app, scaling, metric)
    header = "procs | " + " | ".join(f"{s:>10}" for s in STRATEGIES)
    print(f"== {title} -- {app}, {scaling} input ==")
    print(header)
    print("-" * len(header))
    for i, p in enumerate(PROCS):
        row = f"{p:5d} | " + " | ".join(f"{data[s][i]:10.2f}" for s in STRATEGIES)
        print(row + (f"   [{unit}]" if i == 0 else ""))
