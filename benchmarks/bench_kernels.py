"""Local-reduction kernel benchmark: pre-fusion segment loop vs fused.

Measures the engine's phase-2 hot path on identical routed inputs:

- **baseline** -- :func:`repro.runtime.kernels.reference_segment_reduction`,
  the pre-fusion per-(read, output-chunk) Python loop preserved
  verbatim (argsort, per-segment ``grid.local_cell_index``, scalar
  ``AggregationSpec.aggregate`` with its per-call re-coercion);
- **fused** -- :func:`repro.runtime.kernels.group_read` (one lexsort per
  read) + ``AggregationSpec.aggregate_grouped`` (``reduceat``
  pre-reduction, fancy-index scatter), with values coerced once per
  chunk by :func:`repro.runtime.kernels.coerce_values`.

Both paths consume the same pre-routed ``(item_idx, cells)`` arrays,
so routing (and its cache) is out of the measurement -- this is the
reduction kernel alone.  Results are verified element-wise equal
before timing counts.

The workload is the regime the pre-fusion loop is worst at and real
ADR runs hit constantly: output chunks kept small by the accumulator
memory budget (fine tiling) and input chunks whose items have *no*
spatial locality relative to the output chunking -- satellite readings
arrive in orbit order, and DA forwards input by input-owner placement,
not output order.  Each read then scatters into many output chunks at
a few cells apiece, and the per-segment Python loop dominates.

Run standalone (not under pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--min-speedup 5]

writes ``BENCH_kernels.json`` with updates/sec for both paths and the
speedup.  Fidelity follows ``REPRO_BENCH_FIDELITY`` (``fast`` shrinks
the item population, as for the figure benches).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.aggregation.functions import MeanAggregation, SumAggregation  # noqa: E402
from repro.aggregation.output_grid import OutputGrid  # noqa: E402
from repro.dataset.chunk import Chunk  # noqa: E402
from repro.runtime.kernels import (  # noqa: E402
    coerce_values,
    grid_indexer,
    group_read,
    reference_segment_reduction,
)
from repro.runtime.serial import map_chunk_to_cells  # noqa: E402
from repro.space.attribute_space import AttributeSpace  # noqa: E402
from repro.space.mapping import GridMapping  # noqa: E402

FIDELITY = os.environ.get("REPRO_BENCH_FIDELITY", "fast").lower()
SEED = 20260806
ROUNDS = 5

WORKLOADS = {
    # n_items, items_per_chunk, grid_cells, chunk_cells, footprint
    "fast": (60_000, 200, (32, 32), (2, 2), (0.05, 0.05)),
    "full": (240_000, 400, (48, 48), (2, 2), (0.04, 0.04)),
}


def build_workload():
    n_items, per_chunk, gcells, ccells, footprint = WORKLOADS[
        "fast" if FIDELITY == "fast" else "full"
    ]
    rng = np.random.default_rng(SEED)
    in_space = AttributeSpace.regular("in", ("x", "y"), (0, 0), (10, 10))
    out_space = AttributeSpace.regular("out", ("u", "v"), (0, 0), (1, 1))
    coords = rng.uniform(0, 10, size=(n_items, 2))
    values = rng.integers(1, 100, size=(n_items, 1)).astype(float)
    # Arrival-order chunking: items are interleaved round-robin so a
    # chunk's items have no locality relative to the output chunking
    # (orbit-order readings / DA-forwarded input), the regime where
    # the per-segment loop dominates.
    n_chunks = n_items // per_chunk
    chunks = [
        Chunk.from_items(i, coords[i::n_chunks], values[i::n_chunks])
        for i in range(n_chunks)
    ]
    grid = OutputGrid(out_space, gcells, ccells)
    mapping = GridMapping(in_space, out_space, gcells, footprint=footprint)
    return chunks, mapping, grid


def route_all(chunks, mapping, grid):
    """Pre-route every chunk once; both timed paths reuse the arrays."""
    routed = []
    n_updates = 0
    for chunk in chunks:
        item_idx, cells = map_chunk_to_cells(chunk, mapping, grid, None)
        routed.append((chunk, item_idx, cells))
        n_updates += len(cells)
    return routed, n_updates


def fresh_accs(grid, spec):
    return {o: spec.initialize(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)}


def run_baseline(routed, grid, spec, sel_map, tile_of_output, out_global, accs):
    def aggregate(o, local_cells, values):
        spec.aggregate(accs[o], local_cells, values)

    for chunk, item_idx, cells in routed:
        reference_segment_reduction(
            item_idx, cells, chunk.values, grid, sel_map,
            tile_of_output, 0, out_global, aggregate,
        )


def run_fused(routed, grid, spec, sel_map, tile_of_output, accs):
    """The engine's fused phase-2 body: one lexsort + one read-wide
    pre-reduction, then one fancy-indexed scatter per segment."""
    indexer = grid_indexer(grid)
    for chunk, item_idx, cells in routed:
        values = coerce_values(chunk.values, spec.value_components)
        segs = group_read(
            item_idx, cells, values, grid, sel_map, tile_of_output, 0, indexer
        )
        if segs is None:
            continue
        reduced = spec.prereduce_groups(segs.values, segs.group_starts)
        if reduced is None:
            for k in range(len(segs.seg_out)):
                o = int(segs.seg_out[k])
                s, e = segs.starts[k], segs.ends[k]
                spec.aggregate_grouped(accs[o], segs.flat[s:e], segs.values[s:e])
            continue
        gflat = segs.flat[segs.group_starts]
        gb = segs.group_bounds.tolist()
        for k, o in enumerate(segs.seg_out.tolist()):
            spec.scatter_groups(accs[o], gflat[gb[k] : gb[k + 1]], reduced[gb[k] : gb[k + 1]])


def time_path(fn, rounds=ROUNDS):
    """Best-of-N wall-clock (fresh accumulators each round, untimed)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_spec(routed, n_updates, grid, spec):
    n = grid.n_chunks
    sel_map = np.arange(n, dtype=np.int64)
    tile_of_output = np.zeros(n, dtype=np.int64)
    out_global = np.arange(n, dtype=np.int64)

    # Correctness gate: both paths must land on identical accumulators.
    acc_base = fresh_accs(grid, spec)
    run_baseline(routed, grid, spec, sel_map, tile_of_output, out_global, acc_base)
    acc_fused = fresh_accs(grid, spec)
    run_fused(routed, grid, spec, sel_map, tile_of_output, acc_fused)
    for o in range(n):
        np.testing.assert_allclose(
            acc_fused[o], acc_base[o], err_msg=f"output chunk {o} diverged"
        )

    t_base = time_path(
        lambda: run_baseline(
            routed, grid, spec, sel_map, tile_of_output, out_global,
            fresh_accs(grid, spec),
        )
    )
    t_fused = time_path(
        lambda: run_fused(
            routed, grid, spec, sel_map, tile_of_output, fresh_accs(grid, spec)
        )
    )
    return {
        "baseline_seconds": t_base,
        "fused_seconds": t_fused,
        "baseline_updates_per_sec": n_updates / t_base,
        "fused_updates_per_sec": n_updates / t_fused,
        "speedup": t_base / t_fused,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit 1 unless every spec's fused speedup meets this factor",
    )
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_kernels.json"),
        help="output JSON path (default: repo-root BENCH_kernels.json)",
    )
    args = parser.parse_args(argv)

    chunks, mapping, grid = build_workload()
    routed, n_updates = route_all(chunks, mapping, grid)
    report = {
        "bench": "kernels",
        "fidelity": "fast" if FIDELITY == "fast" else "full",
        "n_chunks": len(chunks),
        "n_updates_per_pass": n_updates,
        "rounds": ROUNDS,
        "specs": {},
    }
    for spec in (SumAggregation(1), MeanAggregation(1)):
        name = type(spec).__name__
        report["specs"][name] = bench_spec(routed, n_updates, grid, spec)
        r = report["specs"][name]
        print(
            f"{name}: baseline {r['baseline_updates_per_sec']:,.0f} up/s, "
            f"fused {r['fused_updates_per_sec']:,.0f} up/s, "
            f"speedup {r['speedup']:.1f}x"
        )

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.min_speedup is not None:
        slow = {
            name: r["speedup"]
            for name, r in report["specs"].items()
            if r["speedup"] < args.min_speedup
        }
        if slow:
            print(
                f"FAIL: speedup below {args.min_speedup}x for "
                + ", ".join(f"{n} ({s:.1f}x)" for n, s in slow.items())
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
