"""Extension bench: where does each strategy win?

The paper concludes that "no one scheme is always best.  The relative
performance of the various query planning strategies changes with the
application characteristics and machine configuration."  This bench
makes that statement a *map*: using the generic parameterized emulator
it sweeps the two characteristics the strategies trade on -- fan-out
(DA's forwarding volume) and per-pair reduction cost (the computation
FRA's fixed overheads amortize against) -- for a uniform and a
hotspot-skewed input distribution, and prints the winning strategy per
cell.
"""

import pytest

import repro_grid as grid
from repro.emulator.generic import GenericEmulator
from repro.machine.config import ComputeCosts
from repro.machine.presets import ibm_sp
from repro.planner.strategies import plan_query
from repro.sim.query_sim import simulate_query

P = 32
FAN_OUTS = (1.0, 2.0, 4.0, 8.0)
LR_COSTS_MS = (2, 10, 40)
CHUNKS = 1500 if grid.FAST else 4000


def winner(fan_out, lr_ms, spatial):
    emu = GenericEmulator(
        base_chunks=CHUNKS,
        fan_out=fan_out,
        spatial=spatial,
        costs=ComputeCosts.from_ms(1, lr_ms, 5, 1),
    )
    sc = emu.scenario(1, seed=7)
    m = ibm_sp(P)
    prob = sc.problem(m)
    times = {
        s: simulate_query(plan_query(prob, s), m, sc.costs).total_time
        for s in ("FRA", "SRA", "DA")
    }
    best = min(times, key=times.get)
    runner_up = sorted(times.values())[1]
    margin = runner_up / times[best] - 1.0
    return best, times, margin


def test_crossover_map(benchmark):
    results = {}
    for spatial in ("uniform", "hotspot"):
        print()
        print(f"== Strategy winner map ({spatial} inputs, {P} processors, "
              f"{CHUNKS} chunks) ==")
        header = "LR cost \\ fan-out | " + " | ".join(f"{f:>8.0f}" for f in FAN_OUTS)
        print(header)
        print("-" * len(header))
        for lr in LR_COSTS_MS:
            cells = []
            for f in FAN_OUTS:
                best, times, margin = winner(f, lr, spatial)
                results[(spatial, lr, f)] = (best, times)
                cells.append(f"{best:>5}{'*' if margin > 0.10 else ' '}{margin*100:3.0f}%")
            print(f"{lr:14d} ms | " + " | ".join(f"{c:>8}" for c in cells))
        print("(* = winner leads runner-up by >10%)")

    # The paper's conclusion, quantified: the winner is not constant.
    winners = {best for best, _ in results.values()}
    assert len(winners) >= 2, winners
    # DA's corner: cheap compute, no fan-out, no skew.
    best, times = results[("uniform", 2, 1.0)]
    assert times["DA"] <= 1.05 * min(times.values())
    # FRA/SRA's corner: expensive compute, high fan-out, hot spot --
    # forwarding volume plus ownership imbalance sink DA.
    best, times = results[("hotspot", 40, 8.0)]
    assert min(times["FRA"], times["SRA"]) < times["DA"]

    benchmark.pedantic(winner, args=(2.0, 10, "uniform"), rounds=1, iterations=1)
