"""Ablation: declustering algorithm (Hilbert vs round-robin vs random).

Section 2.2: chunks are declustered "to achieve I/O parallelism during
query processing"; the paper's experiments use Hilbert-curve
declustering (ref [12]).  This bench measures (a) the classic
busiest-disk balance metric over a workload of range sub-queries and
(b) end-to-end simulated execution time of the full SAT query under
each placement.  SAT is the interesting case: its chunk population is
irregular (polar-orbit footprints), so striping by chunk id has no
spatial meaning and only the Hilbert placement separates neighbours.
"""

import numpy as np
import pytest

import repro_grid as grid
from repro.decluster import (
    HilbertDeclusterer,
    RandomDeclusterer,
    RoundRobinDeclusterer,
    placement_report,
)
from repro.machine.presets import ibm_sp
from repro.planner.strategies import plan_fra
from repro.sim.query_sim import simulate_query
from repro.util.geometry import Rect

P = grid.PROCS[0]

DECLUSTERERS = {
    "hilbert": HilbertDeclusterer(),
    "round-robin": RoundRobinDeclusterer(),
    "random": RandomDeclusterer(seed=1),
}


def sub_queries(bounds, rng, n=50, frac=0.3):
    lo, hi = bounds.as_arrays()
    span = hi - lo
    out = []
    for _ in range(n):
        a = lo + rng.uniform(0, 1 - frac, size=len(lo)) * span
        out.append(Rect(tuple(a), tuple(a + frac * span)))
    return out


def test_decluster_ablation(benchmark):
    sc = grid.scenario("SAT", 1)
    machine = ibm_sp(P)
    rng = np.random.default_rng(5)
    queries = sub_queries(sc.inputs.bounds, rng)
    print()
    print(f"== Ablation: declustering (SAT, {P} processors) ==")
    print("placement   | busiest/ideal (mean) | busiest/ideal (worst) | exec time")
    results = {}
    for name, decl in DECLUSTERERS.items():
        placed = decl.place(sc.inputs, P)
        rep = placement_report(placed, queries, P)
        prob = sc.problem(machine, declusterer=decl)
        res = simulate_query(plan_fra(prob), machine, sc.costs)
        results[name] = (rep.mean_ratio, rep.max_ratio, res.total_time)
        print(
            f"{name:11} | {rep.mean_ratio:20.3f} | {rep.max_ratio:21.3f} "
            f"| {res.total_time:8.2f} s"
        )
    # Hilbert placement balances range-query I/O best.
    assert results["hilbert"][0] <= results["round-robin"][0]
    assert results["hilbert"][0] <= results["random"][0]
    benchmark(
        lambda: HilbertDeclusterer().assign(sc.inputs, P)
    )
