"""Pipelined execution benchmark: synchronous reads vs read-ahead.

Measures the I/O-overlap win of the unified tile pipeline on a real
multi-tile query:

- **sync** -- ``execute_plan(..., prefetch=False)``: every chunk
  retrieval blocks the reduction loop, so per-read latency is paid
  serially (the pre-pipeline behaviour);
- **prefetch** -- ``execute_plan(..., prefetch=PrefetchPolicy(...))``:
  the :class:`repro.store.prefetch.TilePrefetcher` issues reads in
  placement order from worker threads, at most one tile ahead, so
  retrieval latency overlaps reduction/combine/output of the current
  tile.

Chunk retrieval carries an artificial per-read latency (``sleep``
inside the provider, as a remote disk or object store would impose);
results are verified bit-for-bit identical -- counters included --
before any timing counts, since the pipeline's contract is that
overlap never changes the answer.

Run standalone (not under pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--min-speedup 1.5]

writes ``BENCH_pipeline.json`` with wall-clock for both modes and the
speedup.  Fidelity follows ``REPRO_BENCH_FIDELITY`` (``fast`` shrinks
the item population and round count, as for the figure benches).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.aggregation.functions import MeanAggregation  # noqa: E402
from repro.aggregation.output_grid import OutputGrid  # noqa: E402
from repro.dataset.chunkset import ChunkSet  # noqa: E402
from repro.dataset.graph import ChunkGraph  # noqa: E402
from repro.dataset.partition import hilbert_partition  # noqa: E402
from repro.decluster.hilbert import HilbertDeclusterer  # noqa: E402
from repro.planner.problem import PlanningProblem  # noqa: E402
from repro.planner.strategies import plan_query  # noqa: E402
from repro.runtime.engine import execute_plan  # noqa: E402
from repro.space.attribute_space import AttributeSpace  # noqa: E402
from repro.space.mapping import GridMapping  # noqa: E402
from repro.store.prefetch import PrefetchPolicy  # noqa: E402
from repro.util.rng import make_rng  # noqa: E402

FIDELITY = os.environ.get("REPRO_BENCH_FIDELITY", "fast").lower()
SEED = 20260806

WORKLOADS = {
    # n_items, items_per_chunk, grid_cells, chunk_cells, n_procs,
    # memory (bytes/proc), read latency (s), rounds
    "fast": (3_000, 30, (16, 16), (4, 4), 4, 1_024, 0.004, 3),
    "full": (12_000, 60, (24, 24), (4, 4), 4, 2_048, 0.004, 5),
}

POLICY = PrefetchPolicy(depth=8, workers=4)


def build_workload():
    (n_items, per_chunk, gcells, ccells, n_procs, memory, delay, rounds) = WORKLOADS[
        "fast" if FIDELITY == "fast" else "full"
    ]
    rng = make_rng(SEED)
    in_space = AttributeSpace.regular("in", ("x", "y"), (0, 0), (10, 10))
    out_space = AttributeSpace.regular("out", ("u", "v"), (0, 0), (1, 1))
    spec = MeanAggregation(1)
    coords = rng.uniform(0, 10, size=(n_items, 2))
    values = rng.integers(1, 100, size=(n_items, 1)).astype(float)
    chunks = hilbert_partition(coords, values, per_chunk)
    grid = OutputGrid(out_space, gcells, ccells)
    mapping = GridMapping(in_space, out_space, gcells)

    inputs = ChunkSet.from_metas([c.meta for c in chunks])
    decl = HilbertDeclusterer()
    inputs = decl.place(inputs, n_procs)
    outputs = decl.place(grid.chunkset(), n_procs)
    graph = ChunkGraph.from_geometry(inputs, outputs, mapping)
    acc = np.asarray(
        [spec.acc_bytes(grid.cells_in_chunk(o)) for o in range(grid.n_chunks)],
        dtype=np.int64,
    )
    problem = PlanningProblem(
        n_procs=n_procs,
        memory_per_proc=np.int64(memory),  # tight: forces a multi-tile plan
        inputs=inputs,
        outputs=outputs,
        graph=graph,
        acc_nbytes=acc,
    )
    return chunks, mapping, grid, spec, problem, delay, rounds


def slow_provider(chunks, delay):
    """Chunk provider with per-read latency (sleep releases the GIL,
    so prefetch threads overlap it exactly as real I/O would)."""

    def provider(i: int):
        time.sleep(delay)
        return chunks[i]

    return provider


def run_mode(plan, provider, mapping, grid, spec, prefetch):
    return execute_plan(plan, provider, mapping, grid, spec, prefetch=prefetch)


def time_mode(fn, rounds):
    """Best-of-N wall clock."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_strategy(strategy, chunks, mapping, grid, spec, problem, delay, rounds):
    plan = plan_query(problem, strategy)
    provider = slow_provider(chunks, delay)

    # Correctness gate: overlap must not change the answer, bit for
    # bit, counters included.
    sync = run_mode(plan, provider, mapping, grid, spec, prefetch=False)
    pre = run_mode(plan, provider, mapping, grid, spec, prefetch=POLICY)
    assert pre.output_ids.tolist() == sync.output_ids.tolist()
    for o, pv, sv in zip(sync.output_ids, pre.chunk_values, sync.chunk_values):
        if not np.array_equal(pv, sv, equal_nan=True):
            raise AssertionError(f"{strategy}: output chunk {int(o)} diverged")
    for counter in ("n_reads", "bytes_read", "n_aggregations", "n_combines"):
        if getattr(pre, counter) != getattr(sync, counter):
            raise AssertionError(f"{strategy}: counter {counter} diverged")

    t_sync = time_mode(
        lambda: run_mode(plan, provider, mapping, grid, spec, prefetch=False),
        rounds,
    )
    t_pre = time_mode(
        lambda: run_mode(plan, provider, mapping, grid, spec, prefetch=POLICY),
        rounds,
    )
    return {
        "n_tiles": int(plan.n_tiles),
        "n_reads": int(sync.n_reads),
        "io_seconds_serial": sync.n_reads * delay,
        "sync_seconds": t_sync,
        "prefetch_seconds": t_pre,
        "speedup": t_sync / t_pre,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="exit 1 unless every strategy's prefetch speedup meets this factor",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"),
        help="output JSON path (default: repo-root BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)

    chunks, mapping, grid, spec, problem, delay, rounds = build_workload()
    report = {
        "bench": "pipeline",
        "fidelity": "fast" if FIDELITY == "fast" else "full",
        "n_chunks": len(chunks),
        "read_latency_seconds": delay,
        "prefetch_depth": POLICY.depth,
        "prefetch_workers": POLICY.workers,
        "rounds": rounds,
        "strategies": {},
    }
    for strategy in ("FRA", "DA"):
        r = bench_strategy(
            strategy, chunks, mapping, grid, spec, problem, delay, rounds
        )
        report["strategies"][strategy] = r
        print(
            f"{strategy}: tiles={r['n_tiles']} reads={r['n_reads']} "
            f"sync {r['sync_seconds']:.3f}s, prefetch {r['prefetch_seconds']:.3f}s, "
            f"speedup {r['speedup']:.2f}x"
        )

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.min_speedup is not None:
        slow = {
            name: r["speedup"]
            for name, r in report["strategies"].items()
            if r["speedup"] < args.min_speedup
        }
        if slow:
            print(
                f"FAIL: speedup below {args.min_speedup}x for "
                + ", ".join(f"{n} ({s:.2f}x)" for n, s in slow.items())
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
