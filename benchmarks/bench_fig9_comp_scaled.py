"""Figure 9(d): computation time per processor, scaled input.

Expected shape (paper Section 4): per-processor reduction work is
constant by construction, so FRA/SRA stay nearly flat; DA's busiest
processor grows with the machine size because the output-ownership
partitioning gets coarser relative to the (skewed) fan-in
distribution -- the load-imbalance mechanism behind Figure 8's
right-column DA growth.
"""

import pytest

import repro_grid as grid


def comp(r):
    return r.computation_time


@pytest.mark.parametrize("app", grid.APPS)
def test_fig9_comp_scaled(benchmark, app):
    grid.print_table(
        "Figure 9(d): computation time",
        app,
        "scaled",
        comp,
        "seconds (busiest processor)",
    )
    data = grid.series(app, "scaled", comp)
    if app == "SAT" and not grid.FAST:
        # skewed fan-in: DA imbalance grows with the machine
        assert data["DA"][-1] > 1.2 * data["DA"][0], data["DA"]
        fra = data["FRA"]
        assert max(fra) < 1.4 * min(fra), fra
    benchmark(grid.cell_stats.__wrapped__, app, "scaled", grid.PROCS[0], "DA")
