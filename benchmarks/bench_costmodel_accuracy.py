"""Extension bench: cost-model accuracy against the simulator.

Section 6 names "simple but reasonably accurate cost models to guide
and automate the selection of an appropriate strategy" as a long-term
goal, and asks two questions this bench answers quantitatively:

1. *"Under what circumstances do the simple cost models provide
   accurate or inaccurate results?"* -- the simple (whole-query) model
   is accurate when tiles are few/homogeneous and degrades with tile
   count and machine size (per-tile barrier serialization it ignores).
2. *"How can we refine the cost model in situations where it does not
   provide reasonably accurate results?"* -- the refined model applies
   the same busiest-resource reasoning per tile with phase barriers;
   the table shows the error collapse.

A third, *calibrated* column closes the loop: machine constants fitted
from the grid's own simulated telemetry
(:meth:`~repro.experiments.grid.ExperimentGrid.calibrated_model`)
rather than entered by hand.  Fitting absorbs the overlap factors the
closed-form models approximate, so the calibrated error must not be
worse than the hand-entered simple model's.
"""

import numpy as np
import pytest

import repro_grid as grid
from repro.machine.presets import ibm_sp
from repro.planner.costmodel import CostModel


def test_costmodel_accuracy(benchmark):
    print()
    print("== Cost models vs simulator (fixed input) ==")
    print(
        "app | procs | strategy | simulated | simple est (err) "
        "| refined est (err) | calibrated est (err)"
    )
    simple_errors = []
    refined_errors = []
    calibrated_errors = []
    rank_hits = 0
    rank_total = 0
    cal_rank_hits = 0
    cal_rank_total = 0
    for app in grid.APPS:
        sc = grid.scenario(app, 1)
        calibrated_model = grid.calibrated_model(app)
        for P in grid.PROCS:
            simple_model = CostModel(ibm_sp(P), sc.costs)
            refined_model = CostModel(ibm_sp(P), sc.costs, per_tile=True)
            sims = {}
            ests = {}
            cal_ests = {}
            for s in grid.STRATEGIES:
                sim_t = grid.cell(app, "fixed", P, s).total_time
                plan = grid.plan(app, 1, P, s)
                simple_t = simple_model.estimate(plan).total
                refined_t = refined_model.estimate(plan).total
                calibrated_t = calibrated_model.estimate(plan).total
                sims[s], ests[s] = sim_t, refined_t
                cal_ests[s] = calibrated_t
                e_s = abs(simple_t - sim_t) / sim_t
                e_r = abs(refined_t - sim_t) / sim_t
                e_c = abs(calibrated_t - sim_t) / sim_t
                simple_errors.append(e_s)
                refined_errors.append(e_r)
                calibrated_errors.append(e_c)
                print(
                    f"{app:3} | {P:5d} | {s:8} | {sim_t:8.2f} s "
                    f"| {simple_t:8.2f} s ({e_s * 100:5.1f}%) "
                    f"| {refined_t:8.2f} s ({e_r * 100:5.1f}%) "
                    f"| {calibrated_t:8.2f} s ({e_c * 100:5.1f}%)"
                )
            sim_best = min(sims, key=sims.get)
            est_best = min(ests, key=ests.get)
            spread = max(sims.values()) - min(sims.values())
            if spread > 0.15 * max(sims.values()):
                rank_total += 1
                rank_hits += sim_best == est_best
                cal_rank_total += 1
                cal_rank_hits += sim_best == min(cal_ests, key=cal_ests.get)
    mean_s = float(np.mean(simple_errors))
    mean_r = float(np.mean(refined_errors))
    mean_c = float(np.mean(calibrated_errors))
    p90_r = float(np.quantile(refined_errors, 0.9))
    print(
        f"mean relative error: simple {mean_s * 100:.1f}%, refined "
        f"{mean_r * 100:.1f}% (p90 {p90_r * 100:.1f}%), calibrated "
        f"{mean_c * 100:.1f}%; refined picks the clear winner "
        f"{rank_hits}/{rank_total} times, calibrated "
        f"{cal_rank_hits}/{cal_rank_total}"
    )
    assert mean_r < mean_s  # the refinement must actually refine
    assert mean_r < 0.12
    assert mean_c <= mean_s  # fitting must not lose to hand-entered constants
    if rank_total:
        assert rank_hits / rank_total >= 0.9
        assert cal_rank_hits / cal_rank_total >= 0.9
    model = CostModel(ibm_sp(grid.PROCS[0]), grid.scenario("SAT", 1).costs, per_tile=True)
    benchmark(model.estimate, grid.plan("SAT", 1, grid.PROCS[0], "FRA"))
