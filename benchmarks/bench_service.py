"""Concurrent query service benchmark: shared scans vs one-at-a-time.

Measures the throughput/latency win of the concurrent front end
(:mod:`repro.frontend.queryservice`) on an overlap-heavy workload
driven over the real wire protocol (``ADRServer`` + ``ADRClient``
threads):

- **sequential** -- a one-at-a-time server (``max_inflight=1``,
  ``batch_max=1``, sharing off, no payload cache): every query pays
  full chunk-retrieval latency, queries queue behind each other (the
  paper's "socket interface ... for sequential clients" baseline);
- **concurrent_shared** -- the concurrent service with admission
  control, shared-bytes batching and scan sharing through the pinned
  payload cache: overlapping queries aggregate out of the same decoded
  chunk reads.

Chunk retrieval carries an artificial per-read latency (``sleep``
under the cache, as a disk farm or object store would impose).
Before any timing counts, every query's shared-execution result is
verified bit-for-bit against the same query executed alone on a fresh
ADR instance -- the service's contract is that sharing never changes
the answer.

Run standalone (not under pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_service.py [--min-ratio 1.5]

writes ``BENCH_service.json`` with queries/sec and p50/p99 latency for
both modes and the throughput ratio.  Fidelity follows
``REPRO_BENCH_FIDELITY`` (``fast`` shrinks the item population, query
count and round count, as for the figure benches).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.aggregation.functions import MeanAggregation  # noqa: E402
from repro.aggregation.output_grid import OutputGrid  # noqa: E402
from repro.dataset.partition import hilbert_partition  # noqa: E402
from repro.frontend.adr import ADR  # noqa: E402
from repro.frontend.query import RangeQuery  # noqa: E402
from repro.frontend.queryservice import ServicePolicy  # noqa: E402
from repro.frontend.service import ADRClient, ADRServer  # noqa: E402
from repro.machine.config import MachineConfig  # noqa: E402
from repro.space.attribute_space import AttributeSpace  # noqa: E402
from repro.space.mapping import GridMapping  # noqa: E402
from repro.store.chunk_store import ChunkStore, MemoryChunkStore  # noqa: E402
from repro.util.geometry import Rect  # noqa: E402
from repro.util.rng import make_rng  # noqa: E402
from repro.util.units import MB  # noqa: E402

FIDELITY = os.environ.get("REPRO_BENCH_FIDELITY", "fast").lower()
SEED = 20260807

WORKLOADS = {
    # n_items, items_per_chunk, grid_cells, chunk_cells, n_procs,
    # read latency (s), workload repeats, n_clients, rounds
    "fast": (3_000, 30, (12, 12), (3, 3), 4, 0.002, 1, 4, 3),
    "full": (9_000, 45, (16, 16), (4, 4), 4, 0.002, 2, 6, 5),
}

#: Overlap-heavy query regions over the (0,0)-(10,10) input space:
#: duplicates, nested boxes and staggered quadrants/strips, so a batch
#: always has chunks to share.
REGION_TEMPLATES = [
    ((0, 0), (10, 10)),
    ((0, 0), (10, 10)),
    ((1, 1), (9, 9)),
    ((0, 0), (7, 7)),
    ((3, 3), (10, 10)),
    ((0, 3), (7, 10)),
    ((3, 0), (10, 7)),
    ((0, 0), (10, 5)),
    ((0, 5), (10, 10)),
    ((0, 2), (10, 8)),
    ((2, 0), (8, 10)),
    ((2, 2), (10, 10)),
]


class SlowStore(ChunkStore):
    """Per-read latency under the payload cache: cache hits are free,
    misses pay the disk farm's round trip."""

    def __init__(self, inner, delay: float) -> None:
        self.inner = inner
        self.delay = delay

    def read_chunk(self, dataset, chunk_id):
        time.sleep(self.delay)
        return self.inner.read_chunk(dataset, chunk_id)

    def write_chunk(self, dataset, chunk, node, disk):
        self.inner.write_chunk(dataset, chunk, node, disk)

    def delete_dataset(self, dataset):
        self.inner.delete_dataset(dataset)

    def placement(self, dataset, chunk_id):
        return self.inner.placement(dataset, chunk_id)

    def chunk_ids(self, dataset):
        return self.inner.chunk_ids(dataset)


def build_workload():
    (n_items, per_chunk, gcells, ccells, n_procs, delay, repeats,
     n_clients, rounds) = WORKLOADS["fast" if FIDELITY == "fast" else "full"]
    rng = make_rng(SEED)
    in_space = AttributeSpace.regular("in", ("x", "y"), (0, 0), (10, 10))
    out_space = AttributeSpace.regular("out", ("u", "v"), (0, 0), (1, 1))
    coords = rng.uniform(0, 10, size=(n_items, 2))
    values = rng.integers(1, 100, size=(n_items, 1)).astype(float)
    chunks = hilbert_partition(coords, values, per_chunk)
    grid = OutputGrid(out_space, gcells, ccells)
    mapping = GridMapping(in_space, out_space, gcells)
    queries = [
        RangeQuery("sensors", Rect(lo, hi), mapping, grid,
                   aggregation=MeanAggregation(1), strategy="FRA")
        for _ in range(repeats)
        for lo, hi in REGION_TEMPLATES
    ]
    return in_space, chunks, queries, n_procs, delay, n_clients, rounds


def make_adr(in_space, chunks, n_procs, delay, cache_bytes):
    adr = ADR(
        machine=MachineConfig(n_procs=n_procs, memory_per_proc=MB),
        store=SlowStore(MemoryChunkStore(), delay),
        cache_bytes=cache_bytes,
    )
    adr.load("sensors", in_space, chunks)
    return adr


def verify_shared_matches_isolated(in_space, chunks, queries, n_procs):
    """Correctness gate: shared concurrent execution must be
    bit-identical to each query alone on a fresh instance (zero read
    latency here -- only values and counters matter)."""
    from repro.frontend.queryservice import QueryService

    isolated = [
        make_adr(in_space, chunks, n_procs, 0.0, 0).execute(q) for q in queries
    ]
    service = QueryService(
        make_adr(in_space, chunks, n_procs, 0.0, 64 * MB),
        ServicePolicy(max_inflight=2, batch_max=len(queries),
                      batch_window=0.05),
    )
    try:
        tickets = [service.submit(q) for q in queries]
        shared = [t.result(timeout=120.0) for t in tickets]
    finally:
        service.close()
    for qi, (solo, conc) in enumerate(zip(isolated, shared)):
        if conc.output_ids.tolist() != solo.output_ids.tolist():
            raise AssertionError(f"query {qi}: shared output ids diverged")
        for o, cv, sv in zip(conc.output_ids, conc.chunk_values,
                             solo.chunk_values):
            if not np.array_equal(cv, sv, equal_nan=True):
                raise AssertionError(
                    f"query {qi}: output chunk {int(o)} diverged under sharing"
                )
        for counter in ("n_reads", "bytes_read", "n_aggregations",
                        "n_combines", "n_tiles"):
            if getattr(conc, counter) != getattr(solo, counter):
                raise AssertionError(f"query {qi}: counter {counter} diverged")


def drive_round(server, queries, n_clients):
    """Hammer the server with *n_clients* threads sharing one query
    list; returns (wall seconds, per-query latencies)."""
    latencies = []
    errors = []
    lock = threading.Lock()
    work = list(enumerate(queries))

    def client_loop(tid):
        try:
            with ADRClient(*server.address, timeout=300.0) as client:
                for qi, query in work:
                    if qi % n_clients != tid:
                        continue
                    t0 = time.perf_counter()
                    client.query(query)
                    dt = time.perf_counter() - t0
                    with lock:
                        latencies.append(dt)
        except BaseException as e:  # surface, don't hang the bench
            with lock:
                errors.append(e)

    threads = [
        threading.Thread(target=client_loop, args=(t,)) for t in range(n_clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=600)
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    if len(latencies) != len(queries):
        raise AssertionError(f"{len(latencies)}/{len(queries)} queries completed")
    return wall, latencies


def bench_mode(mode, in_space, chunks, queries, n_procs, delay, n_clients,
               rounds):
    """Best-of-N throughput; latencies pooled over all rounds.  Each
    round gets a fresh server and a cold cache."""
    best_wall = float("inf")
    all_latencies = []
    stats = {}
    for _ in range(rounds):
        if mode == "sequential":
            adr = make_adr(in_space, chunks, n_procs, delay, 0)
            policy = ServicePolicy(
                max_queue=4 * len(queries), max_inflight=1, batch_max=1,
                share_scans=False,
            )
        else:
            adr = make_adr(in_space, chunks, n_procs, delay, 64 * MB)
            policy = ServicePolicy(
                max_queue=4 * len(queries), max_inflight=4, batch_max=8,
                batch_window=0.005,
            )
        with ADRServer(adr, port=0, policy=policy) as server:
            wall, latencies = drive_round(server, queries, n_clients)
            stats = server.service.stats()
        best_wall = min(best_wall, wall)
        all_latencies.extend(latencies)
    lat_ms = np.asarray(all_latencies) * 1e3
    return {
        "seconds": best_wall,
        "queries_per_second": len(queries) / best_wall,
        "p50_latency_ms": float(np.percentile(lat_ms, 50)),
        "p99_latency_ms": float(np.percentile(lat_ms, 99)),
        "batches": int(stats.get("batches", 0)),
        "batched_queries": int(stats.get("batched_queries", 0)),
        "shared_reads": int(stats.get("shared_reads", 0)),
        "shared_bytes": int(stats.get("shared_bytes", 0)),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-ratio", type=float, default=None,
        help="exit 1 unless shared/sequential throughput meets this factor",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_service.json"),
        help="output JSON path (default: repo-root BENCH_service.json)",
    )
    args = parser.parse_args(argv)

    (in_space, chunks, queries, n_procs, delay, n_clients,
     rounds) = build_workload()
    verify_shared_matches_isolated(in_space, chunks, queries, n_procs)

    report = {
        "bench": "service",
        "fidelity": "fast" if FIDELITY == "fast" else "full",
        "n_chunks": len(chunks),
        "n_queries": len(queries),
        "n_clients": n_clients,
        "read_latency_seconds": delay,
        "rounds": rounds,
        "modes": {},
    }
    for mode in ("sequential", "concurrent_shared"):
        r = bench_mode(
            mode, in_space, chunks, queries, n_procs, delay, n_clients, rounds
        )
        report["modes"][mode] = r
        print(
            f"{mode}: {r['queries_per_second']:.1f} q/s "
            f"(wall {r['seconds']:.3f}s), p50 {r['p50_latency_ms']:.1f} ms, "
            f"p99 {r['p99_latency_ms']:.1f} ms, "
            f"shared_reads {r['shared_reads']}"
        )
    ratio = (
        report["modes"]["concurrent_shared"]["queries_per_second"]
        / report["modes"]["sequential"]["queries_per_second"]
    )
    report["throughput_ratio"] = ratio
    print(f"throughput ratio (shared / sequential): {ratio:.2f}x")

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.min_ratio is not None and ratio < args.min_ratio:
        print(f"FAIL: throughput ratio {ratio:.2f}x below {args.min_ratio}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
