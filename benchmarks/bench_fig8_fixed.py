"""Figure 8, left column: query execution time, fixed input size.

For each application the smallest dataset (Table 1 minimum) is
processed on 8..128 processors under FRA, DA and SRA; the printed
series are the paper's left-column curves.

Expected shape (paper Section 4): execution time decreases with the
processor count for every strategy; FRA and SRA outperform DA on
small processor counts for SAT and WCS, with the gap narrowing as
processors are added; for VM the strategies are close, with DA
slightly ahead.
"""

import pytest

import repro_grid as grid


@pytest.mark.parametrize("app", grid.APPS)
def test_fig8_fixed(benchmark, app):
    grid.print_table(
        "Figure 8 (left): execution time",
        app,
        "fixed",
        lambda r: r.total_time,
        "seconds",
    )
    data = grid.series(app, "fixed", lambda r: r.total_time)
    # Paper claim: time decreases with P for every strategy.
    for s, times in data.items():
        assert all(a > b for a, b in zip(times, times[1:])), (s, times)
    # Paper claim: FRA beats DA at the smallest processor count for
    # SAT and WCS.  (Full fidelity only: reduced populations shrink the
    # reduction work relative to FRA's fixed combine overhead.)
    if app in ("SAT", "WCS") and not grid.FAST:
        assert data["FRA"][0] < data["DA"][0]
    # benchmark target: planning the 8-processor query
    benchmark(grid.plan.__wrapped__, app, 1, 8, "FRA")
