"""Figure 9(c): computation time per processor, fixed input size.

Reported metric: the busiest processor's CPU time (max over
processors), where DA's load imbalance and FRA/SRA's constant
initialization and global-combine overheads show up.

Expected shape (paper Section 4): "the computation time does not
scale perfectly.  For DA this is because of load imbalance incurred
during the local reduction phase, while for FRA and SRA it is due to
constant overheads in the initialization and global reduction
phases."
"""

import pytest

import repro_grid as grid


def comp(r):
    return r.computation_time


@pytest.mark.parametrize("app", grid.APPS)
def test_fig9_comp_fixed(benchmark, app):
    grid.print_table(
        "Figure 9(c): computation time",
        app,
        "fixed",
        comp,
        "seconds (busiest processor)",
    )
    data = grid.series(app, "fixed", comp)
    lo, hi = grid.PROCS[0], grid.PROCS[-1]
    speedup_ideal = hi / lo
    for s in grid.STRATEGIES:
        measured = data[s][0] / data[s][-1]
        assert measured > 1.0, (s, data[s])
        # imperfect scaling: measured speedup below ideal
        assert measured < speedup_ideal, (s, measured, speedup_ideal)
    benchmark(grid.cell_stats.__wrapped__, app, "fixed", grid.PROCS[0], "SRA")
