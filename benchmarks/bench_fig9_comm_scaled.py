"""Figure 9(b): communication volume per processor, scaled input.

Expected shape (paper Section 4): "the volume of communication for DA
increases for scaled input size" (per-processor input stays constant
but nearly all of it must be forwarded as processors are added);
FRA/SRA remain bounded by the fixed accumulator size.
"""

import pytest

import repro_grid as grid

MB = 2**20


def comm_mb(r):
    return r.comm_volume_per_proc / MB


@pytest.mark.parametrize("app", grid.APPS)
def test_fig9_comm_scaled(benchmark, app):
    grid.print_table(
        "Figure 9(b): communication volume per processor",
        app,
        "scaled",
        comm_mb,
        "MB/processor",
    )
    data = grid.series(app, "scaled", comm_mb)
    # DA grows; FRA stays bounded.
    assert data["DA"][-1] > data["DA"][0]
    fra = data["FRA"]
    assert max(fra) < 1.35 * min(fra), fra
    benchmark(grid.cell_stats.__wrapped__, app, "scaled", grid.PROCS[0], "DA")
