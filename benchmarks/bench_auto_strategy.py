"""Auto-selection benchmark: the full telemetry -> calibration -> choice loop.

Section 6 of the paper asks for "simple but reasonably accurate cost
models to guide and automate the selection of an appropriate strategy".
This bench closes that loop over the paper's experiment grid
(application x scaling x processors) and gates two claims:

1. **Rank agreement** -- a cost model calibrated *only* from simulated
   telemetry (per-phase times harvested into
   :class:`~repro.planner.telemetry.MeasuredRun` records, machine
   constants fitted by :func:`~repro.planner.calibrate.calibrate`)
   ranks the strategies the same way measured execution does on at
   least 90% of the *decisive* grid points (points where the best and
   worst strategy differ by more than 15% -- where the choice
   matters).  Agreement means the model's pick measures within 5% of
   the best strategy: when two strategies tie (e.g. FRA vs SRA within
   a fraction of a percent while DA is 2x worse), picking either is a
   correct ranking, not an error.
2. **Auto never loses badly** -- on *every* grid point, executing the
   calibrated model's pick costs at most 1.10x the best fixed
   strategy's measured time.

Run standalone (not under pytest-benchmark)::

    PYTHONPATH=src python benchmarks/bench_auto_strategy.py \
        [--min-rank-agreement 0.9] [--max-auto-regression 1.1]

writes ``BENCH_costmodel.json`` with per-point detail, per-application
fit diagnostics and both gate metrics.  Fidelity follows
``REPRO_BENCH_FIDELITY`` (``fast`` shrinks populations and the
processor axis, as for the figure benches).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.grid import (  # noqa: E402
    APPS,
    SCALINGS,
    STRATEGIES,
    ExperimentGrid,
)

FIDELITY = os.environ.get("REPRO_BENCH_FIDELITY", "full").lower()
SEED = 20260707

#: A grid point is *decisive* when the strategy spread exceeds this
#: fraction of the slowest strategy; below it the strategies tie and
#: rank agreement is noise, not signal.
DECISIVE_SPREAD = 0.15

#: On a decisive point the pick still counts as rank agreement when its
#: measured time is within this fraction of the best strategy's --
#: near-identical top contenders are a tie, not a ranking error.
RANK_TIE_TOLERANCE = 0.05


def run_grid(grid: ExperimentGrid) -> dict:
    points = []
    rank_hits = 0
    rank_total = 0
    worst_ratio = 0.0
    apps = {}
    for app in APPS:
        model = grid.calibrated_model(app)
        d = model.diagnostics
        apps[app] = {
            "n_runs": d.n_runs,
            "n_equations": d.n_equations,
            "r2": d.r2,
            "phase_rel_err": dict(d.phase_rel_err),
            "constants": {k: float(v) for k, v in model.constants.items()},
        }
        print(f"{app}: {d.summary()}")
        for scaling in SCALINGS:
            for p in grid.procs:
                sims = {
                    s: grid.cell(app, scaling, p, s).total_time
                    for s in STRATEGIES
                }
                choice = grid.auto_choice(app, scaling, p)
                best = min(sims, key=sims.get)
                worst = max(sims.values())
                spread = worst - min(sims.values())
                decisive = bool(spread > DECISIVE_SPREAD * worst)
                ratio = sims[choice.selected] / sims[best]
                worst_ratio = max(worst_ratio, ratio)
                if decisive:
                    rank_total += 1
                    rank_hits += ratio <= 1.0 + RANK_TIE_TOLERANCE
                points.append(
                    {
                        "app": app,
                        "scaling": scaling,
                        "n_procs": p,
                        "measured_seconds": {
                            s: float(t) for s, t in sims.items()
                        },
                        "estimated_seconds": choice.ranking_dict(),
                        "auto_pick": choice.selected,
                        "measured_best": best,
                        "auto_over_best": float(ratio),
                        "decisive": decisive,
                    }
                )
    agreement = rank_hits / rank_total if rank_total else 1.0
    return {
        "bench": "costmodel",
        "fidelity": "fast" if FIDELITY == "fast" else "full",
        "procs": list(grid.procs),
        "strategies": list(STRATEGIES),
        "decisive_spread": DECISIVE_SPREAD,
        "rank_tie_tolerance": RANK_TIE_TOLERANCE,
        "calibration": apps,
        "rank_agreement": agreement,
        "decisive_points": rank_total,
        "rank_hits": rank_hits,
        "max_auto_regression": float(worst_ratio),
        "n_grid_points": len(points),
        "points": points,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--min-rank-agreement", type=float, default=None,
        help="exit 1 unless the calibrated model agrees with measured "
             "ranking on at least this fraction of decisive grid points",
    )
    parser.add_argument(
        "--max-auto-regression", type=float, default=None,
        help="exit 1 if auto's measured time exceeds the best fixed "
             "strategy by more than this factor on any grid point",
    )
    parser.add_argument(
        "--out",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_costmodel.json"
        ),
        help="output JSON path (default: repo-root BENCH_costmodel.json)",
    )
    args = parser.parse_args(argv)

    grid = ExperimentGrid(
        fidelity="fast" if FIDELITY == "fast" else "full", seed=SEED
    )
    report = run_grid(grid)
    print(
        f"rank agreement: {report['rank_hits']}/{report['decisive_points']} "
        f"decisive points ({report['rank_agreement'] * 100:.0f}%); "
        f"max auto/best regression {report['max_auto_regression']:.3f}x "
        f"over {report['n_grid_points']} grid points"
    )

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    failed = False
    if (
        args.min_rank_agreement is not None
        and report["rank_agreement"] < args.min_rank_agreement
    ):
        print(
            f"FAIL: rank agreement {report['rank_agreement']:.2f} below "
            f"{args.min_rank_agreement}"
        )
        failed = True
    if (
        args.max_auto_regression is not None
        and report["max_auto_regression"] > args.max_auto_regression
    ):
        print(
            f"FAIL: auto regression {report['max_auto_regression']:.3f}x "
            f"above {args.max_auto_regression}x"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
