"""Figure 8, right column: query execution time, input scaled with P.

The input dataset grows proportionally to the processor count
(scale = P/8, reaching the Table 1 maxima at 128 processors).

Expected shape (paper Section 4): execution time stays nearly
constant for FRA and SRA on SAT and WCS, while it *increases* for DA
-- "the DA strategy has both higher communication volume and more
load imbalance".
"""

import pytest

import repro_grid as grid


@pytest.mark.parametrize("app", grid.APPS)
def test_fig8_scaled(benchmark, app):
    grid.print_table(
        "Figure 8 (right): execution time",
        app,
        "scaled",
        lambda r: r.total_time,
        "seconds",
    )
    data = grid.series(app, "scaled", lambda r: r.total_time)
    if app in ("SAT", "WCS") and not grid.FAST:
        # FRA nearly flat; DA clearly growing.
        fra = data["FRA"]
        assert max(fra) < 1.5 * min(fra), fra
        assert data["DA"][-1] > 1.2 * data["DA"][0], data["DA"]
    benchmark(grid.plan.__wrapped__, app, 1, 8, "DA")
