"""Table 1: application characteristics.

Regenerates the paper's Table 1 from the emulators: chunk counts and
byte totals for the smallest and largest input datasets, average
fan-in and fan-out, and the per-phase compute costs.

Paper values for reference:

=====  ============  ===========  =======  ============  ========  =============
app    input chunks  input size   outputs  fan-in        fan-out   I-LR-GC-OH ms
=====  ============  ===========  =======  ============  ========  =============
SAT    9K - 144K     1.6 - 26 GB  256      161 - 1307    4.6       1-40-20-1
WCS    7.5K - 120K   1.7 - 27 GB  150      60 - 960      1.2       1-20-1-1
VM     4K - 64K      1.5 - 24 GB  256      16 - 128      1.0       1-5-1-1
=====  ============  ===========  =======  ============  ========  =============
"""

import pytest

import repro_grid as grid


MAX_SCALE = 4 if grid.FAST else 16


@pytest.mark.parametrize("app", grid.APPS)
def test_table1(benchmark, app):
    small = grid.scenario(app, 1)
    large = grid.scenario(app, MAX_SCALE)
    c = small.costs
    print()
    print(f"== Table 1 -- {app} ==")
    print("  smallest:", small.table1_row())
    print("  largest: ", large.table1_row())
    print(
        f"  costs I-LR-GC-OH: {c.init*1e3:.0f}-{c.reduction*1e3:.0f}-"
        f"{c.combine*1e3:.0f}-{c.output*1e3:.0f} ms"
    )
    # benchmark the emulator itself: scenario generation end to end
    benchmark(grid.emulator(app).scenario, 1, 123)
