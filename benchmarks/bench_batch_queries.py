"""Extension bench: batch (multi-query) planning with scan sharing.

The paper's planning service handles *sets* of queries; this bench
quantifies the benefit on a realistic workload: four Virtual
Microscope views over overlapping slide regions (the I/O-bound
application, where shared retrievals actually buy wall-clock time),
executed as one ordered batch vs independently.
"""

import numpy as np
import pytest

import repro_grid as grid
from repro.machine.presets import ibm_sp
from repro.planner.batch import plan_batch, simulate_batch
from repro.planner.problem import PlanningProblem

P = grid.PROCS[0]


def windowed_problems(base: PlanningProblem, windows, axis=0):
    """Sub-problems selecting chunks in overlapping windows on *axis*."""
    out = []
    times = base.inputs.centers[:, axis]
    lo, hi = times.min(), times.max()
    span = (hi - lo) or 1.0
    for a, b in windows:
        ids = np.flatnonzero((times >= lo + a * span) & (times <= lo + b * span))
        edge_in, edge_out = base.graph.edge_arrays()
        keep = np.isin(edge_in, ids)
        remap = np.full(base.n_in, -1, dtype=np.int64)
        remap[ids] = np.arange(len(ids))
        from repro.dataset.graph import ChunkGraph

        sub_graph = ChunkGraph(
            len(ids), base.n_out, remap[edge_in[keep]], edge_out[keep]
        )
        out.append(
            PlanningProblem(
                n_procs=base.n_procs,
                memory_per_proc=base.memory_per_proc,
                inputs=base.inputs.subset(ids),
                outputs=base.outputs,
                graph=sub_graph,
                acc_nbytes=base.acc_nbytes,
                input_global_ids=ids,
            )
        )
    return out


def test_batch_scan_sharing(benchmark):
    sc = grid.scenario("VM", 2)
    base = sc.problem(ibm_sp(P))
    # four half-overlapping viewing regions across the slide
    problems = windowed_problems(
        base, [(0.0, 0.4), (0.5, 0.9), (0.25, 0.65), (0.6, 1.0)]
    )
    batch = plan_batch(problems, "FRA")
    machine = ibm_sp(P)
    shared = simulate_batch(batch, machine, sc.costs, shared_scan=True)
    cold = simulate_batch(batch, machine, sc.costs, shared_scan=False)
    print()
    print(f"== Batch of 4 overlapping VM views ({P} processors, FRA) ==")
    print(f"  {batch.summary()}")
    print(f"  independent: {cold.total_time:8.2f} s")
    print(f"  shared scan: {shared.total_time:8.2f} s "
          f"({shared.bytes_saved / 2**20:.0f} MB of reads elided, "
          f"{(1 - shared.total_time / cold.total_time) * 100:.1f}% faster)")
    assert shared.bytes_saved > 0
    assert shared.total_time < 0.95 * cold.total_time  # real wall-clock win
    benchmark(plan_batch, problems, "FRA")
