"""Extension bench: the Section-6 hybrid strategy vs FRA/SRA/DA.

"Our experimental results suggest that a hybrid strategy may provide
better performance" -- this bench runs the graph-based hybrid planner
against the three published strategies across the applications and
both ends of the processor axis, and reports where it lands.
"""

import pytest

import repro_grid as grid
from repro.machine.presets import ibm_sp
from repro.planner.hybrid import plan_hybrid
from repro.planner.validate import validate_plan
from repro.sim.query_sim import simulate_query

P_SMALL = grid.PROCS[0]
P_LARGE = grid.PROCS[-1]


def test_hybrid_vs_extremes(benchmark):
    print()
    print("== Hybrid strategy vs FRA/SRA/DA (fixed input) ==")
    print("app | procs |      FRA |      SRA |       DA |   HYBRID | hybrid vs best")
    ratios = []
    for app in grid.APPS:
        sc = grid.scenario(app, 1)
        for P in (P_SMALL, P_LARGE):
            machine = ibm_sp(P)
            prob = grid.problem(app, 1, P)
            times = {}
            for s in ("FRA", "SRA", "DA"):
                times[s] = grid.cell(app, "fixed", P, s).total_time
            hplan = plan_hybrid(prob, machine, sc.costs)
            validate_plan(hplan)
            times["HYBRID"] = simulate_query(hplan, machine, sc.costs).total_time
            best = min(times["FRA"], times["SRA"], times["DA"])
            ratio = times["HYBRID"] / best
            ratios.append(ratio)
            print(
                f"{app:3} | {P:5d} | {times['FRA']:8.2f} | {times['SRA']:8.2f} "
                f"| {times['DA']:8.2f} | {times['HYBRID']:8.2f} | {ratio:6.2f}x"
            )
    # The hybrid should track the best extreme closely everywhere.
    assert max(ratios) < 1.3, ratios
    prob = grid.problem("SAT", 1, P_SMALL)
    sc = grid.scenario("SAT", 1)
    benchmark(plan_hybrid, prob, ibm_sp(P_SMALL), sc.costs)
