"""Ablation: Hilbert vs row-major vs random tiling order.

Section 3 motivates sorting output chunks along a Hilbert curve before
tiling: "Our goal is to minimize the total length of the boundaries of
the tiles, by assigning spatially close chunks in the multi-dimensional
attribute space to the same tile, to reduce the number of input chunks
crossing one or more boundaries."  The observable cost of a bad order
is *read multiplicity*: input chunks intersecting several tiles are
retrieved once per tile.

This bench plans the SAT workload under FRA with three selection
orders and reports tiles, read multiplicity and simulated time.
"""

import numpy as np
import pytest

import repro_grid as grid
from repro.machine.presets import ibm_sp
from repro.planner.strategies import plan_fra
from repro.sim.query_sim import simulate_query

P = grid.PROCS[0]


def orders(problem, seed=0):
    n = problem.n_out
    return {
        "hilbert": problem.output_hilbert_order(),
        "row-major": np.arange(n),
        "random": np.random.default_rng(seed).permutation(n),
    }


def test_tiling_order_ablation(benchmark):
    problem = grid.problem("SAT", 2, P)  # scale 2: several tiles under FRA
    sc = grid.scenario("SAT", 2)
    machine = ibm_sp(P)
    rows = {}
    print()
    print(f"== Ablation: tiling order (SAT, scale 2, {P} processors, FRA) ==")
    print("order      | tiles | read multiplicity | exec time")
    for name, order in orders(problem).items():
        plan = plan_fra(problem, order=order)
        res = simulate_query(plan, machine, sc.costs)
        rows[name] = (plan.n_tiles, plan.read_multiplicity, res.total_time)
        print(
            f"{name:10} | {plan.n_tiles:5d} | {plan.read_multiplicity:17.3f} "
            f"| {res.total_time:8.2f} s"
        )
    # The paper's claim: Hilbert ordering re-reads fewer chunks than a
    # random order (row-major can tie on grid-like outputs).
    assert rows["hilbert"][1] <= rows["row-major"][1] + 1e-9
    assert rows["hilbert"][1] < rows["random"][1]
    assert rows["hilbert"][2] <= rows["random"][2]
    benchmark(lambda: plan_fra(problem).read_multiplicity)
