"""Ablation: disks per node.

ADR targets "distributed memory parallel architectures with multiple
disks attached to each node"; the SP testbed happened to have one.
This bench varies the per-node disk count on the I/O-heavy VM workload
and shows where the bottleneck moves from the disk arm to the CPU.
"""

import dataclasses

import pytest

import repro_grid as grid
from repro.machine.presets import ibm_sp
from repro.planner.strategies import plan_fra
from repro.sim.query_sim import simulate_query

P = grid.PROCS[0]


def test_disks_per_node_ablation(benchmark):
    sc = grid.scenario("VM", 1)
    print()
    print(f"== Ablation: disks per node (VM, {P} processors, FRA) ==")
    print("disks/node | exec time | busiest-disk time | busiest-cpu time")
    times = {}
    for disks in (1, 2, 4, 8):
        m = dataclasses.replace(ibm_sp(P), disks_per_node=disks)
        prob = sc.problem(m)
        res = simulate_query(plan_fra(prob), m, sc.costs)
        times[disks] = res.total_time
        print(
            f"{disks:10d} | {res.total_time:8.2f} s | {res.io_time:14.2f} s "
            f"| {res.computation_time:13.2f} s"
        )
    assert times[2] < times[1]
    assert times[4] < times[2]
    # diminishing returns once the CPU dominates
    gain_12 = times[1] / times[2]
    gain_48 = times[4] / times[8]
    assert gain_48 < gain_12

    m = dataclasses.replace(ibm_sp(P), disks_per_node=2)
    prob = sc.problem(m)
    benchmark.pedantic(
        simulate_query, args=(plan_fra(prob), m, sc.costs), rounds=3, iterations=1
    )
