"""Figure 9(a): communication volume per processor, fixed input size.

Expected shape (paper Section 4): DA's volume is proportional to the
input chunks per processor times the fan-out, so it *falls* as
processors are added; FRA's is proportional to the (fixed) accumulator
size and stays nearly constant; SRA tracks FRA while the fan-in
exceeds the processor count and drops below it afterwards (visible
for VM at P >= 32).
"""

import pytest

import repro_grid as grid

MB = 2**20


def comm_mb(r):
    return r.comm_volume_per_proc / MB


@pytest.mark.parametrize("app", grid.APPS)
def test_fig9_comm_fixed(benchmark, app):
    grid.print_table(
        "Figure 9(a): communication volume per processor",
        app,
        "fixed",
        comm_mb,
        "MB/processor",
    )
    data = grid.series(app, "fixed", comm_mb)
    # DA volume decreases with P.
    assert all(a > b for a, b in zip(data["DA"], data["DA"][1:])), data["DA"]
    # FRA volume roughly constant.
    fra = data["FRA"]
    assert max(fra) < 1.35 * min(fra), fra
    if app == "VM" and not grid.FAST:
        # SRA drops below FRA once P exceeds the fan-in (16).
        i32 = grid.PROCS.index(32) if 32 in grid.PROCS else len(grid.PROCS) - 1
        assert data["SRA"][i32] < 0.9 * data["FRA"][i32]
    benchmark(grid.cell_stats.__wrapped__, app, "fixed", grid.PROCS[0], "FRA")
